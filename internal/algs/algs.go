// Package algs implements parallel matrix multiplication algorithms on the
// simulated α-β-γ machine:
//
//   - Alg1 — the paper's §5 communication-optimal algorithm: All-Gather the
//     A and B panels over grid fibers, multiply locally, Reduce-Scatter the
//     C contributions. With the §5.2 grid it attains Theorem 3's bound
//     exactly.
//   - AllToAll3D — the Agarwal et al. 1995 original that Alg1 refines,
//     using an All-to-All plus local summation instead of the
//     Reduce-Scatter (same bandwidth, more messages).
//   - OneD — the classical block-row algorithm (gather all of B).
//   - SUMMA — the 2D stationary-C panel-broadcast algorithm of van de Geijn
//     and Watts, the workhorse of ScaLAPACK-style libraries.
//   - Cannon — Cannon's 2D shift algorithm on square grids.
//   - TwoPointFiveD — the Solomonik-Demmel 2.5D algorithm with c replicated
//     layers, trading memory for communication.
//
// Every algorithm starts from a one-copy distribution of the inputs, ends
// with a one-copy distribution of the output (as Theorem 3 assumes), runs
// entirely through the simulated network, and returns the assembled product
// along with the machine statistics, so tests can verify numerical
// correctness against a serial product and experiments can compare measured
// communication against the bounds.
package algs

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
	"repro/internal/topo"
)

// Opts configures a simulated run.
type Opts struct {
	// Config is the machine cost model; the zero value charges nothing, so
	// most callers want machine.BandwidthOnly() or an explicit α-β-γ.
	Config machine.Config
	// Grid fixes the processor grid for the 3D algorithms (Alg1,
	// AllToAll3D). The zero value selects grid.Optimal.
	Grid grid.Grid
	// Collective selects the collective implementation family.
	Collective collective.Algorithm
	// Layers is the replication factor c for TwoPointFiveD; 0 picks the
	// largest c ≤ cbrt(P) with c | q where q = sqrt(P/c).
	Layers int
	// Workers bounds local matmul parallelism inside each simulated rank;
	// 0 uses a single goroutine per rank (recommended: ranks are already
	// concurrent).
	Workers int
	// Trace enables event tracing; the recorded timeline is returned in
	// Result.Trace.
	Trace bool
	// Traffic enables per-pair traffic accounting; the matrix is returned
	// in Result.Traffic.
	Traffic bool
	// Topo, when non-nil, prices every message through an interconnect
	// topology (see internal/topo) instead of the uniform α/β of Config;
	// its endpoint count must equal the run's processor count. The Flat
	// topology reproduces the uniform model bit-for-bit.
	Topo topo.Topology
	// Place selects how ranks are embedded onto Topo's endpoints; the zero
	// value is contiguous. Ignored when Topo is nil.
	Place topo.Policy
	// Engine selects the machine's scheduling backend. The zero value is
	// the goroutine engine; machine.EngineEvent multiplexes ranks onto a
	// worker pool for cluster-scale P. Results are bit-identical either
	// way (pinned by the golden-stats tests).
	Engine machine.Engine
}

// Validate reports whether the options are self-consistent, before any
// algorithm-specific requirements: worker and layer counts must be
// non-negative, the collective family must be a known value, and a non-zero
// grid must have positive extents. Failures wrap core.ErrBadOpts (or
// core.ErrGridMismatch for the grid), so callers can dispatch with
// errors.Is.
func (o Opts) Validate() error {
	if o.Workers < 0 {
		return fmt.Errorf("algs: negative Workers %d: %w", o.Workers, core.ErrBadOpts)
	}
	if o.Layers < 0 {
		return fmt.Errorf("algs: negative Layers %d: %w", o.Layers, core.ErrBadOpts)
	}
	switch o.Collective {
	case collective.Auto, collective.Ring, collective.Recursive:
	default:
		return fmt.Errorf("algs: unknown collective family %d: %w", o.Collective, core.ErrBadOpts)
	}
	switch o.Place {
	case topo.Contiguous, topo.RoundRobin:
	default:
		return fmt.Errorf("algs: unknown placement policy %d: %w", int(o.Place), core.ErrBadTopology)
	}
	switch o.Engine {
	case machine.EngineGoroutine, machine.EngineEvent:
	default:
		return fmt.Errorf("algs: unknown engine %d: %w", int(o.Engine), core.ErrBadOpts)
	}
	if o.Grid != (grid.Grid{}) {
		return o.Grid.Validate()
	}
	return nil
}

// newWorld builds the simulated machine for a run, honoring the tracing
// and topology options. With a topology set, ranks are placed onto its
// endpoints and every send is priced through the resulting Network; a
// topology whose endpoint count differs from p wraps core.ErrBadTopology.
func newWorld(p int, opts Opts) (*machine.World, *machine.Trace, error) {
	w, err := machine.New(p, opts.Config, machine.WithEngine(opts.Engine))
	if err != nil {
		return nil, nil, err
	}
	if opts.Topo != nil {
		if opts.Topo.P() != p {
			return nil, nil, fmt.Errorf("algs: topology %s has %d endpoints, run uses %d processors: %w",
				opts.Topo.Name(), opts.Topo.P(), p, core.ErrBadTopology)
		}
		pl, err := topo.PlaceRanks(p, opts.Topo, opts.Place)
		if err != nil {
			return nil, nil, err
		}
		net, err := topo.NewNetwork(opts.Topo, pl)
		if err != nil {
			return nil, nil, err
		}
		w.SetNetwork(net)
	}
	var tr *machine.Trace
	if opts.Trace {
		tr = w.EnableTracing()
	}
	return w, tr, nil
}

// Result is the outcome of a simulated parallel multiplication.
type Result struct {
	// Name of the algorithm that produced the result.
	Name string
	// C is the assembled n1×n3 product.
	C *matrix.Dense
	// Grid is the processor grid used (zero for non-grid algorithms).
	Grid grid.Grid
	// Stats are the machine statistics of the run.
	Stats machine.WorldStats
	// Trace holds the event timeline when Opts.Trace was set, else nil.
	Trace *machine.Trace
	// Traffic holds the per-pair traffic matrix when Opts.Traffic was
	// set, else nil.
	Traffic *machine.TrafficMatrix
}

// CommCost returns the per-processor communication volume of the run (max
// words received by any rank), the quantity Theorem 3 bounds.
func (r *Result) CommCost() float64 { return r.Stats.CommCost() }

// dimsOf derives the problem shape from the input matrices.
func dimsOf(a, b *matrix.Dense) (core.Dims, error) {
	if a.Cols() != b.Rows() {
		return core.Dims{}, fmt.Errorf("algs: inner dimensions %d and %d disagree: %w", a.Cols(), b.Rows(), core.ErrBadDims)
	}
	return core.NewDims(a.Rows(), a.Cols(), b.Cols()), nil
}

// localMul multiplies a and b on rank r, charging the scalar-multiplication
// count to the simulated clock.
func localMul(r *machine.Rank, a, b *matrix.Dense, workers int) *matrix.Dense {
	r.Compute(float64(a.Rows()) * float64(a.Cols()) * float64(b.Cols()))
	if workers > 1 {
		return matrix.MulParallel(a, b, workers)
	}
	return matrix.Mul(a, b)
}

// localMulAdd is localMul accumulating into c.
func localMulAdd(r *machine.Rank, c, a, b *matrix.Dense, workers int) {
	r.Compute(float64(a.Rows()) * float64(a.Cols()) * float64(b.Cols()))
	if workers > 1 {
		matrix.MulAddParallel(c, a, b, workers)
		return
	}
	matrix.MulAdd(c, a, b)
}

// localMulAddVal is localMulAdd on matrix values (wrapped pooled buffers),
// keeping the headers off the heap on the sequential path.
func localMulAddVal(r *machine.Rank, c, a, b matrix.Dense, workers int) {
	r.Compute(float64(a.Rows()) * float64(a.Cols()) * float64(b.Cols()))
	matrix.MulAddVal(c, a, b, workers)
}

// localMulIntoVal computes c = a·b on rank r, reusing (and zeroing) c's
// storage, for call sites that overwrite rather than accumulate.
func localMulIntoVal(r *machine.Rank, c, a, b matrix.Dense, workers int) {
	r.Compute(float64(a.Rows()) * float64(a.Cols()) * float64(b.Cols()))
	matrix.MulIntoVal(c, a, b, workers)
}

// shareCounts returns the balanced per-member word counts for splitting a
// packed block of total words across p owners.
func shareCounts(total, p int) []int {
	return shareCountsInto(make([]int, p), total)
}

// shareCountsInto is shareCounts writing into counts (whose length is the
// owner count); it returns counts.
func shareCountsInto(counts []int, total int) []int {
	p := len(counts)
	q, rem := total/p, total%p
	for i := range counts {
		counts[i] = q
		if i < rem {
			counts[i]++
		}
	}
	return counts
}

// shareRange returns the packed-word range [lo, hi) owned by member idx
// under shareCounts(total, p).
func shareRange(total, p, idx int) (lo, hi int) {
	lo = matrix.PartStart(total, p, idx)
	return lo, lo + matrix.PartSize(total, p, idx)
}

// blockRange returns the row/column ranges of grid cell (i1, i3) of C under
// the balanced p1×p3 partition.
func blockRange(n, p, i int) (start, size int) {
	return matrix.PartStart(n, p, i), matrix.PartSize(n, p, i)
}
