package algs

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// TestAlg1TrafficStaysOnFibers inspects the full traffic matrix of an
// Algorithm 1 run: every message travels within one of the three grid
// fibers through its endpoints, so the active communication pairs are a
// small subset of the P(P−1) possible — the locality structure Figure 1
// depicts with its three arrows.
func TestAlg1TrafficStaysOnFibers(t *testing.T) {
	d := core.Square(24)
	p := 27
	g, err := grid.CaseGrid(d, p)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(24, 24, 1)
	b := matrix.Random(24, 24, 2)

	w := machine.NewWorld(p, machine.BandwidthOnly())
	tm := w.EnableTraffic()
	// Re-run the Alg1 body manually is unnecessary: drive it through the
	// package API by replicating run3D's world would need export; instead
	// exercise the same pattern through the collective groups used by
	// Alg1 — simplest is to call Alg1 with its own world and separately
	// validate fiber structure on this traffic world via the same
	// schedule. To keep this test meaningful, run the collectives exactly
	// as Alg1 does.
	runErr := w.Run(func(r *machine.Rank) {
		i1, i2, i3 := g.Coords(r.ID())
		aBlk := matrix.BlockOf(a, g.P1, g.P2, i1, i2)
		bBlk := matrix.BlockOf(b, g.P2, g.P3, i2, i3)
		runFiberSchedule(r, g, aBlk, bBlk, i1, i3)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}

	sameFiber := func(x, y int) bool {
		x1, x2, x3 := g.Coords(x)
		y1, y2, y3 := g.Coords(y)
		same := 0
		if x1 == y1 {
			same++
		}
		if x2 == y2 {
			same++
		}
		if x3 == y3 {
			same++
		}
		return same >= 2 // differ in at most one grid coordinate
	}
	active := 0
	for s := 0; s < p; s++ {
		for dst := 0; dst < p; dst++ {
			if tm.Words(s, dst) == 0 {
				continue
			}
			active++
			if !sameFiber(s, dst) {
				t.Fatalf("off-fiber message %d→%d (%v words)", s, dst, tm.Words(s, dst))
			}
		}
	}
	if active == 0 || active >= p*(p-1) {
		t.Fatalf("active pairs = %d of %d", active, p*(p-1))
	}
	if tm.ActivePairs() != active {
		t.Fatalf("ActivePairs %d != counted %d", tm.ActivePairs(), active)
	}
}

// runFiberSchedule reproduces Alg1's three collectives on the caller's
// world (the algorithm itself constructs a private world, so the traffic
// inspection drives the identical schedule directly).
func runFiberSchedule(r *machine.Rank, g grid.Grid, aBlk, bBlk *matrix.Dense, i1, i3 int) {
	packedA := aBlk.Pack()
	packedB := bBlk.Pack()
	countsA := shareCounts(len(packedA), g.P3)
	countsB := shareCounts(len(packedB), g.P1)
	loA, hiA := shareRange(len(packedA), g.P3, i3)
	loB, hiB := shareRange(len(packedB), g.P1, i1)
	grpA := newFiberGroup(r, g, grid.Axis3, 1)
	fullA := grpA.AllGatherV(packedA[loA:hiA], countsA)
	grpB := newFiberGroup(r, g, grid.Axis1, 2)
	fullB := grpB.AllGatherV(packedB[loB:hiB], countsB)
	ga := matrix.New(aBlk.Rows(), aBlk.Cols())
	ga.Unpack(fullA)
	gb := matrix.New(bBlk.Rows(), bBlk.Cols())
	gb.Unpack(fullB)
	dBlk := matrix.Mul(ga, gb)
	packedD := dBlk.Pack()
	grpC := newFiberGroup(r, g, grid.Axis2, 3)
	grpC.ReduceScatterV(packedD, shareCounts(len(packedD), g.P2))
}

// newFiberGroup builds the collective group for rank r's fiber along axis.
func newFiberGroup(r *machine.Rank, g grid.Grid, axis grid.Axis, tag int) *collective.Group {
	return collective.NewGroup(r, g.Fiber(r.ID(), axis), tag, collective.Auto)
}

// TestAlg1TrafficOption exposes the traffic matrix through the algorithm
// API and checks the fiber-locality property end to end.
func TestAlg1TrafficOption(t *testing.T) {
	a := matrix.Random(24, 24, 3)
	b := matrix.Random(24, 24, 4)
	opts := bwOpts()
	opts.Traffic = true
	res, err := Alg1(a, b, 27, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Traffic == nil {
		t.Fatal("traffic matrix missing")
	}
	if res.Traffic.ActivePairs() == 0 || res.Traffic.ActivePairs() >= 27*26 {
		t.Fatalf("active pairs = %d", res.Traffic.ActivePairs())
	}
	// Without the option the field stays nil.
	res2, err := Alg1(a, b, 27, bwOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Traffic != nil {
		t.Fatal("traffic attached without the option")
	}
}
