package algs

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// Phase labels used by the 3D algorithms for per-phase accounting.
const (
	PhaseGatherA = "allgather-A"
	PhaseGatherB = "allgather-B"
	PhaseReduceC = "reduce-C"
)

// Alg1 runs the paper's Algorithm 1 on p processors: organize them in a 3D
// grid, All-Gather the A panel over Axis3 fibers and the B panel over Axis1
// fibers, multiply locally, and Reduce-Scatter the C contributions over
// Axis2 fibers. With the §5.2 optimal grid (the default) its communication
// cost attains Theorem 3's lower bound exactly when the grid divides the
// dimensions.
func Alg1(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	return run3D("Alg1", a, b, p, opts, true)
}

// AllToAll3D runs the Agarwal et al. 1995 predecessor of Algorithm 1: the
// same 3D data movement for the inputs, but the C contributions are
// exchanged with an All-to-All and summed locally instead of a
// Reduce-Scatter. The bandwidth is identical; the message count (latency
// term) is higher — the paper's §5.1 notes this as the only difference.
func AllToAll3D(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	return run3D("AllToAll3D", a, b, p, opts, false)
}

func run3D(name string, a, b *matrix.Dense, p int, opts Opts, reduceScatter bool) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	g := opts.Grid
	if g == (grid.Grid{}) {
		g = grid.Optimal(d, p)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Size() != p {
		return nil, fmt.Errorf("algs: grid %v has %d processors, want %d: %w", g, g.Size(), p, core.ErrGridMismatch)
	}
	if g.P1 > d.N1 || g.P2 > d.N2 || g.P3 > d.N3 {
		return nil, fmt.Errorf("algs: grid %v exceeds dims %v: %w", g, d, core.ErrGridMismatch)
	}

	w, tr, err := newWorld(p, opts)
	if err != nil {
		return nil, err
	}
	var tm *machine.TrafficMatrix
	if opts.Traffic {
		tm = w.EnableTraffic()
	}
	chunks := make([][]float64, p)
	runErr := w.Run(func(r *machine.Rank) {
		i1, i2, i3 := g.Coords(r.ID())

		// Initial one-copy distribution: the A block (i1, i2) is spread
		// evenly (as packed word ranges) over the Axis3 fiber, the B block
		// (i2, i3) over the Axis1 fiber — exactly the layout of §5.
		aBlk := matrix.BlockView(a, g.P1, g.P2, i1, i2)
		bBlk := matrix.BlockView(b, g.P2, g.P3, i2, i3)
		packedA := aBlk.PackInto(r.GetBuffer(aBlk.Size()))
		packedB := bBlk.PackInto(r.GetBuffer(bBlk.Size()))
		countsA := shareCountsInto(r.GetInts(g.P3), len(packedA))
		countsB := shareCountsInto(r.GetInts(g.P1), len(packedB))
		loA, hiA := shareRange(len(packedA), g.P3, i3)
		loB, hiB := shareRange(len(packedB), g.P1, i1)
		myA := packedA[loA:hiA]
		myB := packedB[loB:hiB]
		r.GrowMemory(float64(len(myA) + len(myB)))

		// Line 3: A_{p1'p2'} = All-Gather over (p1', p2', :). The gather
		// output is a pooled buffer that serves directly (wrapped, no copy)
		// as the local gathered block; groups live on the stack and return
		// their scratch on Release.
		r.SetPhase(PhaseGatherA)
		membersA := g.FiberInto(r.GetInts(g.P3), r.ID(), grid.Axis3)
		var grpA collective.Group
		grpA.Init(r, membersA, 1, opts.Collective)
		fullA := grpA.AllGatherVInto(myA, countsA, r.GetBuffer(len(packedA)))
		r.GrowMemory(float64(len(fullA) - len(myA)))
		gatheredA := matrix.Wrap(aBlk.Rows(), aBlk.Cols(), fullA)
		grpA.Release()
		r.PutInts(membersA)
		r.PutInts(countsA)
		r.PutBuffer(packedA)

		// Line 4: B_{p2'p3'} = All-Gather over (:, p2', p3').
		r.SetPhase(PhaseGatherB)
		membersB := g.FiberInto(r.GetInts(g.P1), r.ID(), grid.Axis1)
		var grpB collective.Group
		grpB.Init(r, membersB, 2, opts.Collective)
		fullB := grpB.AllGatherVInto(myB, countsB, r.GetBuffer(len(packedB)))
		r.GrowMemory(float64(len(fullB) - len(myB)))
		gatheredB := matrix.Wrap(bBlk.Rows(), bBlk.Cols(), fullB)
		grpB.Release()
		r.PutInts(membersB)
		r.PutInts(countsB)
		r.PutBuffer(packedB)

		// Line 6: local computation D = A_{p1'p2'} · B_{p2'p3'}. D lives in
		// a pooled buffer that doubles as its packed form for Line 8 (a
		// wrapped matrix is contiguous row-major by construction).
		r.SetPhase("")
		packedD := r.GetBuffer(gatheredA.Rows() * gatheredB.Cols())
		dBlk := matrix.Wrap(gatheredA.Rows(), gatheredB.Cols(), packedD)
		localMulIntoVal(r, dBlk, gatheredA, gatheredB, opts.Workers)
		r.GrowMemory(float64(dBlk.Size()))
		r.PutBuffer(fullA)
		r.PutBuffer(fullB)

		// Line 8: C contributions summed over (p1', :, p3').
		countsC := shareCountsInto(r.GetInts(g.P2), len(packedD))
		r.SetPhase(PhaseReduceC)
		membersC := g.FiberInto(r.GetInts(g.P2), r.ID(), grid.Axis2)
		var grpC collective.Group
		grpC.Init(r, membersC, 3, opts.Collective)
		var myC []float64
		if reduceScatter {
			myC = grpC.ReduceScatterV(packedD, countsC)
		} else {
			// All-to-All the per-destination chunks, then sum locally.
			blocks := make([][]float64, g.P2)
			off := 0
			for j, c := range countsC {
				blocks[j] = packedD[off : off+c]
				off += c
			}
			got := grpC.AllToAll(blocks)
			myC = make([]float64, countsC[i2])
			for j, blk := range got {
				if len(blk) != len(myC) {
					panic(fmt.Sprintf("algs: alltoall chunk %d has %d words, want %d", j, len(blk), len(myC)))
				}
				for i, v := range blk {
					myC[i] += v
				}
			}
			if g.P2 > 1 {
				r.Compute(float64((g.P2 - 1) * len(myC)))
			}
		}
		grpC.Release()
		r.PutInts(membersC)
		r.PutInts(countsC)
		r.PutBuffer(packedD)
		r.SetPhase("")
		r.GrowMemory(float64(len(myC)))
		chunks[r.ID()] = myC
	})
	if runErr != nil {
		return nil, runErr
	}

	cOut := assembleC(d, g, chunks)
	return &Result{Name: name, C: cOut, Grid: g, Stats: w.Stats(), Trace: tr, Traffic: tm}, nil
}

// assembleC reconstructs the global C from the per-rank chunks of the 3D
// algorithms: the (i1, i3) block of C is the concatenation, in Axis2 fiber
// order, of the chunks held by ranks (i1, ·, i3).
func assembleC(d core.Dims, g grid.Grid, chunks [][]float64) *matrix.Dense {
	c := matrix.New(d.N1, d.N3)
	for i1 := 0; i1 < g.P1; i1++ {
		for i3 := 0; i3 < g.P3; i3++ {
			r0, h := blockRange(d.N1, g.P1, i1)
			c0, wd := blockRange(d.N3, g.P3, i3)
			packed := make([]float64, 0, h*wd)
			for i2 := 0; i2 < g.P2; i2++ {
				packed = append(packed, chunks[g.Rank(i1, i2, i3)]...)
			}
			c.View(r0, c0, h, wd).Unpack(packed)
		}
	}
	return c
}
