package algs

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// Cannon runs Cannon's algorithm on a q×q processor grid (P = q²): after an
// initial skew that aligns A(i, i+j) and B(i+j, j) on processor (i, j), the
// grid performs q−1 rounds of multiply-then-shift (A one step left, B one
// step up). It requires a square processor grid and dimensions divisible by
// q; the 2D baseline for the comparison experiments.
func Cannon(a, b *matrix.Dense, p int, opts Opts) (*Result, error) {
	d, err := dimsOf(a, b)
	if err != nil {
		return nil, err
	}
	q := int(math.Round(math.Sqrt(float64(p))))
	if q*q != p {
		return nil, fmt.Errorf("algs: Cannon needs a square processor count, got %d: %w", p, core.ErrBadProcessorCount)
	}
	if d.N1%q != 0 || d.N2%q != 0 || d.N3%q != 0 {
		return nil, fmt.Errorf("algs: Cannon needs dims %v divisible by q=%d: %w", d, q, core.ErrGridMismatch)
	}

	g := grid.Grid{P1: q, P2: 1, P3: q}
	w, tr, err := newWorld(p, opts)
	if err != nil {
		return nil, err
	}
	blocks := make([][]float64, p)
	const (
		tagSkewA  = 100
		tagSkewB  = 101
		tagShiftA = 102
		tagShiftB = 103
	)
	runErr := w.Run(func(r *machine.Rank) {
		i, _, j := g.Coords(r.ID())
		aBlk := matrix.BlockOf(a, q, q, i, j)
		bBlk := matrix.BlockOf(b, q, q, i, j)
		r.GrowMemory(float64(2 * (aBlk.Size() + bBlk.Size()))) // blocks + shift buffers
		cBlk := matrix.New(d.N1/q, d.N3/q)
		r.GrowMemory(float64(cBlk.Size()))

		// Pooled serialization buffers reused for every skew and shift
		// exchange; Send copies out of them before RecvInto overwrites.
		aBuf := r.GetBuffer(aBlk.Size())
		bBuf := r.GetBuffer(bBlk.Size())

		// Initial skew: processor (i, j) must hold A(i, (j+i) mod q) and
		// B((i+j) mod q, j). Each processor sends its canonical block to
		// the peer that needs it and receives its aligned block.
		if q > 1 && i != 0 {
			dst := g.Rank(i, 0, (j-i+q)%q) // A(i,j) is needed at column j-i
			src := g.Rank(i, 0, (j+i)%q)
			exchangeBlock(r, dst, src, tagSkewA, aBlk, aBuf)
		}
		if q > 1 && j != 0 {
			dst := g.Rank((i-j+q)%q, 0, j) // B(i,j) is needed at row i-j
			src := g.Rank((i+j)%q, 0, j)
			exchangeBlock(r, dst, src, tagSkewB, bBlk, bBuf)
		}

		for s := 0; s < q; s++ {
			localMulAdd(r, cBlk, aBlk, bBlk, opts.Workers)
			if s == q-1 {
				break
			}
			// Shift A one step left (receive from the right), B one step
			// up (receive from below).
			leftRank := g.Rank(i, 0, (j-1+q)%q)
			rightRank := g.Rank(i, 0, (j+1)%q)
			exchangeBlock(r, leftRank, rightRank, tagShiftA, aBlk, aBuf)
			upRank := g.Rank((i-1+q)%q, 0, j)
			downRank := g.Rank((i+1)%q, 0, j)
			exchangeBlock(r, upRank, downRank, tagShiftB, bBlk, bBuf)
		}
		r.PutBuffer(aBuf)
		r.PutBuffer(bBuf)
		blocks[r.ID()] = cBlk.Pack()
	})
	if runErr != nil {
		return nil, runErr
	}

	c := matrix.New(d.N1, d.N3)
	for i := 0; i < q; i++ {
		for j := 0; j < q; j++ {
			c.View(i*(d.N1/q), j*(d.N3/q), d.N1/q, d.N3/q).Unpack(blocks[g.Rank(i, 0, j)])
		}
	}
	return &Result{Name: "Cannon", C: c, Grid: g, Stats: w.Stats(), Trace: tr}, nil
}

// exchangeBlock sends blk's contents to dst and replaces them with the block
// received from src, serializing through the caller-owned buf (len must equal
// blk.Size()) so the exchange allocates nothing. Packing buf, sending from it,
// and receiving back into it is safe because Send copies the payload into the
// network before RecvInto overwrites buf. When both peers are this rank
// (shift distance 0 in a degenerate grid) the block is left unchanged.
func exchangeBlock(r *machine.Rank, dst, src, tag int, blk *matrix.Dense, buf []float64) {
	if dst == r.ID() && src == r.ID() {
		return
	}
	blk.PackInto(buf)
	r.SendRecvInto(dst, src, tag, buf, buf)
	blk.Unpack(buf)
}
