package obs

import (
	"bufio"
	"math"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// udpSink is a scratch statsd listener: it collects every line from every
// datagram received on a loopback UDP socket.
type udpSink struct {
	pc   net.PacketConn
	mu   sync.Mutex
	got  []string
	done chan struct{}
}

func newUDPSink(t *testing.T) *udpSink {
	t.Helper()
	pc, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen udp: %v", err)
	}
	s := &udpSink{pc: pc, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		buf := make([]byte, 64<<10)
		for {
			n, _, err := pc.ReadFrom(buf)
			if err != nil {
				return
			}
			s.mu.Lock()
			for _, line := range strings.Split(strings.TrimRight(string(buf[:n]), "\n"), "\n") {
				if line != "" {
					s.got = append(s.got, line)
				}
			}
			s.mu.Unlock()
		}
	}()
	t.Cleanup(func() { pc.Close(); <-s.done })
	return s
}

func (s *udpSink) addr() string { return s.pc.LocalAddr().String() }

func (s *udpSink) lines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.got...)
}

// waitLines polls until the sink holds at least n lines.
func (s *udpSink) waitLines(t *testing.T, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := s.lines(); len(got) >= n {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d lines; have %v", n, s.lines())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func newTestPusher(t *testing.T, cfg PushConfig) *Pusher {
	t.Helper()
	if cfg.Interval == 0 {
		cfg.Interval = time.Hour // tests drive Flush explicitly
	}
	p, err := NewPusher(cfg)
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func TestPushCounterDeltas(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", "endpoint", "/v1/Simulate")
	p := newTestPusher(t, PushConfig{Addr: sink.addr(), Prefix: "parmmd", Registries: []*Registry{r}})

	c.Add(5)
	p.Flush()
	got := sink.waitLines(t, 1)
	if got[0] != "parmmd.reqs_total._v1_simulate:5|c" {
		t.Fatalf("first flush = %q", got[0])
	}
	// Buffered-counts model: the second flush carries only the interval's
	// increments, and a quiet counter is not re-sent at all.
	c.Add(3)
	p.Flush()
	got = sink.waitLines(t, 2)
	if got[1] != "parmmd.reqs_total._v1_simulate:3|c" {
		t.Fatalf("second flush = %q, want the delta 3", got[1])
	}
	p.Flush() // no increments → no line
	r.Gauge("tick", "marker").Set(1)
	p.Flush() // proves the quiet flush sent nothing, without sleeping
	got = sink.waitLines(t, 3)
	for _, l := range got[2:] {
		if strings.Contains(l, "reqs_total") {
			t.Fatalf("quiet counter re-sent: %v", got)
		}
	}
}

func TestPushGaugeAbsolute(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	g := r.Gauge("inflight", "in-flight jobs")
	p := newTestPusher(t, PushConfig{Addr: sink.addr(), Registries: []*Registry{r}})
	g.Set(7)
	p.Flush()
	g.Set(2)
	p.Flush()
	got := sink.waitLines(t, 2)
	if got[0] != "inflight:7|g" || got[1] != "inflight:2|g" {
		t.Fatalf("gauge flushes = %v", got)
	}
}

func TestPushFuncMetrics(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	v := 10.0
	r.CounterFunc("mirror_total", "m", func() float64 { return v })
	r.GaugeFunc("entries", "e", func() float64 { return 3 })
	p := newTestPusher(t, PushConfig{Addr: sink.addr(), Registries: []*Registry{r}})
	p.Flush()
	v = 12.5
	p.Flush()
	got := sink.waitLines(t, 4)
	sort.Strings(got)
	want := []string{"entries:3|g", "entries:3|g", "mirror_total:10|c", "mirror_total:2.5|c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("func metric lines = %v, want %v", got, want)
		}
	}
}

func TestPushHistogramTimerPercentiles(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 0.2, 0.4, 0.8})
	p := newTestPusher(t, PushConfig{Addr: sink.addr(), Registries: []*Registry{r}})
	// 100 observations uniform in (0, 0.1]: everything lands in the first
	// bucket, so interpolated percentiles are q*0.1.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.001)
	}
	p.Flush()
	got := sink.waitLines(t, 5)
	byKey := map[string]string{}
	for _, l := range got {
		k, v, _ := strings.Cut(l, ":")
		byKey[k] = v
	}
	if byKey["lat_seconds.count"] != "100|c" {
		t.Fatalf("count line = %q in %v", byKey["lat_seconds.count"], got)
	}
	sumStr, _, _ := strings.Cut(byKey["lat_seconds.sum"], "|")
	var sum float64
	if _, err := fmtSscan(sumStr, &sum); err != nil || math.Abs(sum-5.05) > 1e-9 {
		t.Fatalf("sum line = %q, want 5.05", byKey["lat_seconds.sum"])
	}
	for q, want := range map[string]float64{"p50": 0.05, "p90": 0.09, "p99": 0.099} {
		vs, _, _ := strings.Cut(byKey["lat_seconds."+q], "|")
		var v float64
		if _, err := fmtSscan(vs, &v); err != nil || math.Abs(v-want) > 1e-9 {
			t.Fatalf("%s = %q, want %v", q, byKey["lat_seconds."+q], want)
		}
	}
	// Second interval: 10 slow observations only; percentiles reflect the
	// interval's deltas, not the lifetime distribution.
	for i := 0; i < 10; i++ {
		h.Observe(0.3)
	}
	p.Flush()
	got = sink.waitLines(t, 10)
	byKey = map[string]string{}
	for _, l := range got[5:] {
		k, v, _ := strings.Cut(l, ":")
		byKey[k] = v
	}
	if byKey["lat_seconds.count"] != "10|c" {
		t.Fatalf("interval count = %q in %v", byKey["lat_seconds.count"], got[5:])
	}
	vs, _, _ := strings.Cut(byKey["lat_seconds.p50"], "|")
	var p50 float64
	fmtSscan(vs, &p50)
	// All 10 fell in (0.2, 0.4]; the interpolated median is 0.3.
	if math.Abs(p50-0.3) > 1e-9 {
		t.Fatalf("interval p50 = %q, want 0.3", byKey["lat_seconds.p50"])
	}
}

func TestPushTCPSink(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	lines := make(chan string, 16)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sc := bufio.NewScanner(conn)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	r := NewRegistry()
	r.Counter("t_total", "t").Add(9)
	p := newTestPusher(t, PushConfig{Addr: "tcp://" + ln.Addr().String(), Registries: []*Registry{r}})
	p.Flush()
	select {
	case l := <-lines:
		if l != "t_total:9|c" {
			t.Fatalf("tcp line = %q", l)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no line over tcp")
	}
}

func TestPushUDPPacketBatching(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	// Enough distinct gauges that one datagram cannot hold them under a
	// tiny MaxPacket; every line must still arrive.
	const n = 40
	for i := 0; i < n; i++ {
		r.Gauge("g", "g", "idx", strings.Repeat("x", 20)+strconv.Itoa(i)).Set(int64(i))
	}
	p := newTestPusher(t, PushConfig{Addr: sink.addr(), MaxPacket: 64, Registries: []*Registry{r}})
	p.Flush()
	got := sink.waitLines(t, n)
	if len(got) < n {
		t.Fatalf("got %d lines, want %d", len(got), n)
	}
	for _, l := range got {
		if len(l) > 64 {
			t.Fatalf("line longer than MaxPacket: %q", l)
		}
	}
}

func TestPushIntervalLoop(t *testing.T) {
	// The ticker loop flushes without explicit Flush calls.
	sink := newUDPSink(t)
	r := NewRegistry()
	r.Counter("loop_total", "l").Inc()
	p, err := NewPusher(PushConfig{Addr: sink.addr(), Interval: 5 * time.Millisecond, Registries: []*Registry{r}})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	defer p.Close()
	got := sink.waitLines(t, 1)
	if got[0] != "loop_total:1|c" {
		t.Fatalf("ticker flush = %q", got[0])
	}
}

func TestPushCloseFlushes(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	c := r.Counter("fin_total", "f")
	p, err := NewPusher(PushConfig{Addr: sink.addr(), Interval: time.Hour, Registries: []*Registry{r}})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	c.Add(4)
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := sink.waitLines(t, 1)
	if got[0] != "fin_total:4|c" {
		t.Fatalf("final flush = %q", got[0])
	}
}

func TestPushToleratesDeadSink(t *testing.T) {
	// A UDP sink that nobody listens on must not error the pusher into a
	// crash — sends are fire-and-forget.
	r := NewRegistry()
	r.Counter("dead_total", "d").Inc()
	p, err := NewPusher(PushConfig{Addr: "udp://127.0.0.1:9", Interval: time.Hour, Registries: []*Registry{r}})
	if err != nil {
		t.Fatalf("NewPusher to dead sink: %v", err)
	}
	p.Flush()
	p.Close()
}

func TestPushBadAddr(t *testing.T) {
	if _, err := NewPusher(PushConfig{Addr: ""}); err == nil {
		t.Fatal("empty addr must error")
	}
	if _, err := NewPusher(PushConfig{Addr: "tcp://127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable tcp sink must surface the dial error")
	}
}

// TestUpdateAllocsWithPusherActive extends the zero-allocation pin to the
// push-enabled configuration: a live Pusher gathers on its own goroutine
// and must leave the mutator hot path allocation-free.
func TestUpdateAllocsWithPusherActive(t *testing.T) {
	sink := newUDPSink(t)
	r := NewRegistry()
	c := r.Counter("pac_total", "c")
	s := r.Striped("pas_total", "s")
	g := r.Gauge("pag", "g")
	h := r.Histogram("pah_seconds", "h", nil)
	p, err := NewPusher(PushConfig{Addr: sink.addr(), Interval: time.Millisecond, Registries: []*Registry{r}})
	if err != nil {
		t.Fatalf("NewPusher: %v", err)
	}
	defer p.Close()
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		s.Add(17, 5)
		g.Set(9)
		h.Observe(0.012)
	}); n != 0 {
		t.Fatalf("mutators allocate %.1f allocs/op with pusher active, want 0", n)
	}
}

// fmtSscan parses a float rendered by formatStatsd.
func fmtSscan(s string, out *float64) (int, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	*out = v
	return 1, nil
}
