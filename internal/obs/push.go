package obs

import (
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// This file is the push half of the observability layer: a Pusher
// periodically gathers every registry metric and emits statsd lines to a
// UDP or TCP sink. It follows the buffered-counts flush model — counters
// ship the delta since the previous flush (`|c`), gauges ship their
// current value (`|g`), and histograms ship interval count/sum deltas
// plus percentile gauges interpolated from the interval's bucket deltas.
//
// The pull path's zero-overhead contract is untouched: the hot-path
// mutators never see the pusher; it reads the same atomics a /metrics
// scrape reads, on its own goroutine, on its own interval.

// sample is one child metric captured at gather time.
type sample struct {
	name string
	kv   []string // raw label key/value pairs as registered
	kind metricKind
	val  float64       // counter/gauge value; unused for histograms
	hist *histSnapshot // non-nil only for histograms
}

// histSnapshot is a histogram read at one instant: non-cumulative
// per-bucket counts (the +Inf bucket last), plus sum and count.
type histSnapshot struct {
	bounds []float64
	counts []uint64 // len(bounds)+1
	sum    float64
	count  uint64
}

// gather reads every metric in the registry into samples. Like a scrape,
// it races in-flight updates benignly: each atomic is read once.
func (r *Registry) gather() []sample {
	var out []sample
	for _, f := range r.snapshot() {
		for _, c := range f.children {
			s := sample{name: f.name, kv: c.kv, kind: f.kind}
			switch m := c.metric.(type) {
			case *Counter:
				s.val = float64(m.Value())
			case *Striped:
				s.val = float64(m.Value())
			case *Gauge:
				s.val = float64(m.Value())
			case func() float64:
				s.val = m()
			case *Histogram:
				hs := &histSnapshot{
					bounds: m.bounds,
					counts: make([]uint64, len(m.counts)),
					sum:    m.Sum(),
					count:  m.Count(),
				}
				for i := range m.counts {
					hs.counts[i] = m.counts[i].Load()
				}
				s.hist = hs
			default:
				continue
			}
			out = append(out, s)
		}
	}
	return out
}

// PushConfig configures a Pusher.
type PushConfig struct {
	// Addr is the sink address: "udp://host:port", "tcp://host:port", or a
	// bare "host:port" (UDP). Required.
	Addr string
	// Interval between flushes; 10s if zero.
	Interval time.Duration
	// Prefix is prepended to every statsd key (a trailing "." is added if
	// missing). Optional.
	Prefix string
	// Quantiles are the percentile gauges emitted per histogram; default
	// 0.5, 0.9, 0.99.
	Quantiles []float64
	// MaxPacket caps one UDP datagram's payload; default 1400 (safe under
	// typical 1500-byte MTUs). TCP ignores it.
	MaxPacket int
	// Registries to gather from; default is just obs.Default.
	Registries []*Registry
}

// prevEntry is the per-metric state from the previous flush, keyed by
// statsd key, used to turn cumulative counters into interval deltas.
type prevEntry struct {
	val    float64
	counts []uint64
	sum    float64
	count  uint64
}

// Pusher emits registry metrics to a statsd sink on an interval. Create
// with NewPusher; stop with Close. Flush is exported so tests (and
// shutdown paths) can force a deterministic flush.
type Pusher struct {
	cfg    PushConfig
	conn   net.Conn
	udp    bool
	mu     sync.Mutex // serializes Flush; guards prev and lastErr
	prev   map[string]prevEntry
	ticker *time.Ticker
	stop   chan struct{}
	done   chan struct{}

	lastErr error
}

// NewPusher dials the sink and starts the flush loop. Dial errors are
// returned; send errors after that are recorded (see Err) but never
// fatal — metrics export must not take the service down with it.
func NewPusher(cfg PushConfig) (*Pusher, error) {
	network, addr := "udp", cfg.Addr
	if s, ok := strings.CutPrefix(cfg.Addr, "udp://"); ok {
		network, addr = "udp", s
	} else if s, ok := strings.CutPrefix(cfg.Addr, "tcp://"); ok {
		network, addr = "tcp", s
	}
	if addr == "" {
		return nil, fmt.Errorf("obs: push: empty sink address")
	}
	conn, err := net.DialTimeout(network, addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("obs: push: dial %s %s: %w", network, addr, err)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 10 * time.Second
	}
	if len(cfg.Quantiles) == 0 {
		cfg.Quantiles = []float64{0.5, 0.9, 0.99}
	}
	if cfg.MaxPacket <= 0 {
		cfg.MaxPacket = 1400
	}
	if cfg.Prefix != "" && !strings.HasSuffix(cfg.Prefix, ".") {
		cfg.Prefix += "."
	}
	if len(cfg.Registries) == 0 {
		cfg.Registries = []*Registry{Default}
	}
	p := &Pusher{
		cfg:    cfg,
		conn:   conn,
		udp:    network == "udp",
		prev:   map[string]prevEntry{},
		ticker: time.NewTicker(cfg.Interval),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.loop()
	return p, nil
}

func (p *Pusher) loop() {
	defer close(p.done)
	for {
		select {
		case <-p.ticker.C:
			p.Flush()
		case <-p.stop:
			return
		}
	}
}

// Close stops the loop, performs a final flush so buffered interval
// deltas are not lost, and closes the connection.
func (p *Pusher) Close() error {
	p.ticker.Stop()
	close(p.stop)
	<-p.done
	p.Flush()
	return p.conn.Close()
}

// Err returns the most recent send error, or nil. Cleared on a
// successful flush.
func (p *Pusher) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lastErr
}

// Flush gathers every registry once and sends the interval's lines. Safe
// for concurrent use with the ticker loop.
func (p *Pusher) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	var lines []string
	for _, r := range p.cfg.Registries {
		for _, s := range r.gather() {
			lines = append(lines, p.linesFor(s)...)
		}
	}
	p.send(lines)
}

// linesFor renders one sample's statsd lines, updating the previous-flush
// state. Called with p.mu held.
func (p *Pusher) linesFor(s sample) []string {
	key := p.statsdKey(s.name, s.kv)
	switch {
	case s.hist != nil:
		return p.histLines(key, s.hist)
	case s.kind == kindCounter:
		prev := p.prev[key]
		p.prev[key] = prevEntry{val: s.val}
		if d := s.val - prev.val; d > 0 {
			return []string{key + ":" + formatStatsd(d) + "|c"}
		}
		return nil
	default: // gauge: absolute value every flush
		return []string{key + ":" + formatStatsd(s.val) + "|g"}
	}
}

// histLines renders a histogram as interval count/sum counters plus
// percentile gauges over the interval's bucket deltas. Called with p.mu
// held.
func (p *Pusher) histLines(key string, h *histSnapshot) []string {
	prev := p.prev[key]
	cur := prevEntry{counts: h.counts, sum: h.sum, count: h.count}
	p.prev[key] = cur
	dCount := h.count - prev.count
	if prev.count > h.count || len(prev.counts) != len(h.counts) {
		// Bucket layout changed or state reset: treat this interval as the
		// first one.
		prev = prevEntry{counts: make([]uint64, len(h.counts))}
		dCount = h.count
	}
	if dCount == 0 {
		return nil
	}
	lines := []string{
		key + ".count:" + strconv.FormatUint(dCount, 10) + "|c",
		key + ".sum:" + formatStatsd(h.sum-prev.sum) + "|c",
	}
	deltas := make([]uint64, len(h.counts))
	for i := range h.counts {
		deltas[i] = h.counts[i] - prev.counts[i]
	}
	for _, q := range p.cfg.Quantiles {
		v := quantileFromBuckets(h.bounds, deltas, dCount, q)
		lines = append(lines, fmt.Sprintf("%s.p%d:%s|g", key, int(q*100+0.5), formatStatsd(v)))
	}
	return lines
}

// quantileFromBuckets estimates the q-quantile from non-cumulative bucket
// deltas by linear interpolation within the containing bucket — the same
// estimate Prometheus's histogram_quantile makes. Observations in the
// +Inf bucket clamp to the last finite bound.
func quantileFromBuckets(bounds []float64, deltas []uint64, total uint64, q float64) float64 {
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, d := range deltas {
		prev := cum
		cum += float64(d)
		if cum < target {
			continue
		}
		if i == len(bounds) { // +Inf bucket: no upper bound to interpolate to
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		if d == 0 {
			return hi
		}
		return lo + (hi-lo)*(target-prev)/float64(d)
	}
	return bounds[len(bounds)-1]
}

// send writes the lines to the sink — newline-joined, batched under
// MaxPacket per datagram for UDP, one stream write for TCP. Called with
// p.mu held.
func (p *Pusher) send(lines []string) {
	if len(lines) == 0 {
		return
	}
	p.lastErr = nil
	if !p.udp {
		_, err := p.conn.Write([]byte(strings.Join(lines, "\n") + "\n"))
		p.lastErr = err
		return
	}
	var b strings.Builder
	flush := func() {
		if b.Len() == 0 {
			return
		}
		if _, err := p.conn.Write([]byte(b.String())); err != nil {
			p.lastErr = err
		}
		b.Reset()
	}
	for _, l := range lines {
		if b.Len() > 0 && b.Len()+1+len(l) > p.cfg.MaxPacket {
			flush()
		}
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(l)
	}
	flush()
}

// statsdKey builds the dotted key: prefix, sanitized metric name, then
// each label value (sorted by label key) as one sanitized segment. Label
// keys are dropped — statsd's namespace is positional — and the sorted
// order makes the key deterministic whatever the registration order.
func (p *Pusher) statsdKey(name string, kv []string) string {
	var b strings.Builder
	b.WriteString(p.cfg.Prefix)
	b.WriteString(sanitizeStatsd(name))
	if len(kv) >= 2 {
		type pair struct{ k, v string }
		ps := make([]pair, 0, len(kv)/2)
		for i := 0; i+1 < len(kv); i += 2 {
			ps = append(ps, pair{kv[i], kv[i+1]})
		}
		sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
		for _, pr := range ps {
			b.WriteByte('.')
			b.WriteString(sanitizeStatsd(strings.ToLower(pr.v)))
		}
	}
	return b.String()
}

// sanitizeStatsd maps a name or label value into statsd's safe alphabet
// [A-Za-z0-9._-], replacing everything else with '_'.
func sanitizeStatsd(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9',
			c == '.', c == '_', c == '-':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// formatStatsd renders a metric value: integers without a decimal point,
// fractional values in shortest round-trip form.
func formatStatsd(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
