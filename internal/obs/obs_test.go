package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Dec()
	g.Add(-2)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestStripedSumsAcrossCells(t *testing.T) {
	r := NewRegistry()
	s := r.Striped("s_total", "striped")
	for hint := 0; hint < 1000; hint++ {
		s.Add(hint, 2)
	}
	if s.Value() != 2000 {
		t.Fatalf("striped sum = %d, want 2000", s.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	// 0.1 is ≤ 0.1: cumulative buckets 2, 3, 4 and +Inf 5.
	for _, line := range []string{
		`h_seconds_bucket{le="0.1"} 2`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		`h_seconds_count 5`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("output missing %q:\n%s", line, out)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "dup", "op", "x")
	b := r.Counter("dup_total", "dup", "op", "x")
	if a != b {
		t.Fatal("re-registration returned a different metric")
	}
	c := r.Counter("dup_total", "dup", "op", "y")
	if c == a {
		t.Fatal("distinct labels shared a metric")
	}
	a.Inc()
	c.Add(2)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if strings.Count(out, "# TYPE dup_total counter") != 1 {
		t.Fatalf("family not grouped under one TYPE line:\n%s", out)
	}
	if !strings.Contains(out, `dup_total{op="x"} 1`) || !strings.Contains(out, `dup_total{op="y"} 2`) {
		t.Fatalf("children missing:\n%s", out)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "m")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("m", "m")
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", "endpoint", `p"ath`).Add(3)
	r.GaugeFunc("entries", "cache entries\nmultiline", func() float64 { return 12 })
	r.CounterFunc("mirrored_total", "mirrored", func() float64 { return 2.5 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	for _, line := range []string{
		"# HELP reqs_total requests\n# TYPE reqs_total counter\n",
		`reqs_total{endpoint="p\"ath"} 3`,
		"# HELP entries cache entries\\nmultiline\n# TYPE entries gauge\nentries 12\n",
		"# TYPE mirrored_total counter\nmirrored_total 2.5\n",
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("output missing %q:\n%s", line, out)
		}
	}
}

// TestLabelOrderDeterministic: label pairs render sorted by key, whatever
// the registration order.
func TestLabelOrderDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("l_total", "l", "zeta", "1", "alpha", "2").Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `l_total{alpha="2",zeta="1"} 1`) {
		t.Fatalf("labels not sorted:\n%s", sb.String())
	}
}

// TestUpdateAllocs pins the zero-allocation contract of every mutator: the
// simulator's hot path runs through these.
func TestUpdateAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ac_total", "c")
	s := r.Striped("as_total", "s")
	g := r.Gauge("ag", "g")
	h := r.Histogram("ah_seconds", "h", nil)
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		s.Add(17, 5)
		g.Set(9)
		g.Add(-1)
		h.Observe(0.012)
	}); n != 0 {
		t.Fatalf("metric updates allocate %.1f allocs/op, want 0", n)
	}
}

// TestConcurrentUpdatesAndScrapes hammers every metric type from many
// goroutines while scraping; under -race this is the synchronization proof.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc_total", "c")
	s := r.Striped("cs_total", "s")
	g := r.Gauge("cg", "g")
	h := r.Histogram("ch_seconds", "h", nil)
	const (
		workers = 8
		iters   = 2000
	)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				s.Add(wkr, 1)
				g.Add(1)
				h.Observe(float64(i) * 1e-4)
				if i%500 == 0 {
					var sb strings.Builder
					r.WritePrometheus(&sb)
				}
			}
		}(wkr)
	}
	wg.Wait()
	if c.Value() != workers*iters || s.Value() != workers*iters {
		t.Fatalf("counter %d striped %d, want %d", c.Value(), s.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*iters)
	}
}

// TestScrapeRegistrationRace is the -race regression test for the
// scrape/registration data race: WritePrometheus used to copy the family
// order under the lock but iterate each family's children after unlocking,
// while register appended to the same slice. Concurrent scrapes against
// late registrations must neither race nor drop settled children.
func TestScrapeRegistrationRace(t *testing.T) {
	r := NewRegistry()
	r.Counter("race_total", "seed", "op", "seed").Inc()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				r.WritePrometheus(&sb)
				if !strings.Contains(sb.String(), `race_total{op="seed"} 1`) {
					t.Error("settled child missing from scrape")
					return
				}
			}
		}()
	}
	for i := 0; i < 500; i++ {
		// Same family (append to children) and fresh families (append to
		// order), the two slices the scraper iterates.
		r.Counter("race_total", "seed", "op", fmt.Sprintf("op%d", i)).Inc()
		r.Gauge(fmt.Sprintf("race_fam_%d", i), "late family").Set(int64(i))
	}
	close(stop)
	wg.Wait()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `race_total{op="op499"} 1`) {
		t.Fatalf("late registration missing from final scrape")
	}
}

// TestHistogramBoundsNormalized: unsorted, duplicated, and +Inf bounds must
// render strictly monotone `le` lines (Prometheus rejects duplicates and
// non-monotone cumulative buckets).
func TestHistogramBoundsNormalized(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		les    []string // expected le label values, in order, +Inf implicit last
	}{
		{"unsorted", []float64{1, 0.5, 2}, []string{"0.5", "1", "2"}},
		{"duplicates", []float64{1, 1, 0.5, 2, 2}, []string{"0.5", "1", "2"}},
		{"explicit_inf", []float64{0.5, math.Inf(1), 1}, []string{"0.5", "1"}},
		{"all_dup", []float64{3, 3, 3}, []string{"3"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			h := r.Histogram("hb_seconds", "h", tc.bounds)
			h.Observe(0.75)
			h.Observe(1.5)
			var sb strings.Builder
			r.WritePrometheus(&sb)
			out := sb.String()
			want := append(append([]string{}, tc.les...), "+Inf")
			var got []string
			for _, line := range strings.Split(out, "\n") {
				if strings.HasPrefix(line, "hb_seconds_bucket{") {
					le := strings.TrimPrefix(line, `hb_seconds_bucket{le="`)
					got = append(got, le[:strings.Index(le, `"`)])
				}
			}
			if len(got) != len(want) {
				t.Fatalf("le lines = %v, want %v:\n%s", got, want, out)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("le lines = %v, want %v:\n%s", got, want, out)
				}
			}
			// Cumulative counts must be non-decreasing with all
			// observations accounted for in +Inf.
			if !strings.Contains(out, `hb_seconds_bucket{le="+Inf"} 2`) {
				t.Fatalf("+Inf bucket must hold every observation:\n%s", out)
			}
		})
	}
}

func TestHistogramNaNBoundPanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on NaN bucket bound")
		}
	}()
	r.Histogram("nan_seconds", "h", []float64{0.1, math.NaN()})
}

func TestEnabledToggle(t *testing.T) {
	if Enabled() {
		t.Fatal("instrumentation must default off")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) not visible")
	}
	SetEnabled(false)
}
