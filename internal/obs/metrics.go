package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// stripes is the cell count of a Striped counter. 64 cells × 64-byte cache
// lines is 4 KiB per metric — cheap next to eliminating cross-rank cache
// bouncing on the simulator's send path.
const stripes = 64

// stripedCell is one padded cell: the counter plus padding filling the rest
// of a cache line, so adjacent stripes never share a line.
type stripedCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Striped is a counter sharded over cache-line-padded cells. Writers pick a
// cell with any roughly-uniform hint (the simulator uses the rank id), so
// thousands of concurrent writers do not contend on one cache line; readers
// sum the cells. The sum is not a point-in-time snapshot across cells —
// exactly the Prometheus counter contract, where scrapes race updates
// anyway.
type Striped struct {
	cells [stripes]stripedCell
}

// Add adds n to the cell selected by hint.
func (s *Striped) Add(hint int, n uint64) { s.cells[uint(hint)%stripes].v.Add(n) }

// Inc adds one to the cell selected by hint.
func (s *Striped) Inc(hint int) { s.cells[uint(hint)%stripes].v.Add(1) }

// Value returns the sum over cells.
func (s *Striped) Value() uint64 {
	var t uint64
	for i := range s.cells {
		t += s.cells[i].v.Load()
	}
	return t
}

// Histogram counts observations in cumulative ≤-bound buckets, plus the sum
// and total count — the Prometheus histogram model. Observe is lock-free:
// one binary search over the fixed bounds and three atomic adds.
type Histogram struct {
	bounds []float64       // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64 // len(bounds)+1, non-cumulative per bucket
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
	n      atomic.Uint64
}

// DefSecondsBuckets are the default latency buckets, in seconds, spanning
// sub-millisecond cache hits to multi-second simulation jobs.
func DefSecondsBuckets() []float64 {
	return []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// newHistogram normalizes the bounds — sorted, duplicates collapsed, an
// explicit +Inf dropped in favor of the implicit final bucket — so the
// cumulative `le` exposition lines are strictly monotone whatever order or
// redundancy the caller passed.
func newHistogram(bounds []float64) *Histogram {
	sorted := make([]float64, len(bounds))
	copy(sorted, bounds)
	sort.Float64s(sorted)
	bs := make([]float64, 0, len(sorted))
	for _, b := range sorted {
		if math.IsInf(b, 1) {
			continue
		}
		if len(bs) > 0 && bs[len(bs)-1] == b {
			continue
		}
		bs = append(bs, b)
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; len(bounds) → +Inf
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }
