// Package obs is the repository's observability layer: hand-rolled,
// dependency-free metric primitives (counters, gauges, histograms, striped
// hot-path counters) grouped in registries that render the Prometheus text
// exposition format.
//
// Design constraints, in order:
//
//  1. The simulator's message hot path (internal/machine Send/Recv) must
//     stay zero-allocation and within noise of its uninstrumented cost.
//     Every mutator here is a single atomic operation on pre-registered
//     state; nothing on the update path allocates, formats, or locks.
//  2. Instrumentation of the process-global hot paths is gated by one
//     atomic bool (Enabled): when off — the default — the only cost at an
//     instrumented site is that load and a predictable branch. Long-running
//     servers (parmmd) switch it on at startup.
//  3. High-frequency counters shared by thousands of simulated ranks use
//     Striped cells (one padded cache line per stripe, indexed by rank) so
//     enabling metrics does not serialize the sharded scheduler on a single
//     contended cache line.
//
// Metrics are registered once (registration is idempotent: re-registering
// the same name/labels returns the existing metric) and rendered on demand
// with WritePrometheus. The process-wide Default registry holds the
// machine- and collective-level metrics; servers own private registries for
// per-instance state and concatenate both at scrape time.
package obs

import "sync/atomic"

// enabled gates the process-global hot-path instrumentation sites
// (internal/machine, internal/collective). Off by default so simulations
// and benchmarks pay only a load+branch per site.
var enabled atomic.Bool

// Enabled reports whether hot-path instrumentation is on.
func Enabled() bool { return enabled.Load() }

// SetEnabled switches hot-path instrumentation on or off. Long-running
// servers call SetEnabled(true) at startup; tests may toggle it around a
// measured region.
func SetEnabled(v bool) { enabled.Store(v) }

// Default is the process-wide registry holding the machine and collective
// metrics. Server-scoped registries are concatenated with it at scrape
// time.
var Default = NewRegistry()
