package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind is the Prometheus TYPE of a metric family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	return [...]string{"counter", "gauge", "histogram"}[k]
}

// child is one labeled member of a family: its rendered label pairs (inner
// part, without braces) plus the metric and how to render it. A child is
// immutable once created — only the metric's own atomics change — so
// snapshotting a family means copying child pointers under the registry
// lock.
type child struct {
	labels string   // `k="v",k2="v2"` or ""
	kv     []string // the raw key/value pairs, for exporters (push.go)
	metric any
	write  func(w io.Writer, name, labels string)
}

// family groups all children sharing one metric name under a single
// HELP/TYPE block, as the exposition format requires.
type family struct {
	name     string
	help     string
	kind     metricKind
	children []*child
}

// Registry holds named metric families and renders them in the Prometheus
// text exposition format. Registration is idempotent: registering the same
// name and labels again returns the existing metric (and panics only on a
// kind mismatch, which is a programming error). Families and children
// render in registration order, so output is deterministic.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	order  []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register finds or creates the (family, child) slot and returns the child
// metric, creating it with mk on first registration.
func (r *Registry) register(name, help string, kind metricKind, labels []string, mk func() (any, func(io.Writer, string, string))) any {
	inner := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.order = append(r.order, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	for _, c := range f.children {
		if c.labels == inner {
			return c.metric
		}
	}
	m, write := mk()
	kv := make([]string, len(labels))
	copy(kv, labels)
	f.children = append(f.children, &child{labels: inner, kv: kv, metric: m, write: write})
	return m
}

// Counter registers (or returns the existing) counter under name with the
// given label key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	return r.register(name, help, kindCounter, labels, func() (any, func(io.Writer, string, string)) {
		c := &Counter{}
		return c, func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, braced(l), strconv.FormatUint(c.Value(), 10))
		}
	}).(*Counter)
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for mirroring counts that already live elsewhere (an existing
// atomic, a cache's hit count) without double accounting.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounter, labels, func() (any, func(io.Writer, string, string)) {
		return fn, func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, braced(l), formatFloat(fn()))
		}
	})
}

// Striped registers (or returns the existing) striped counter under name.
// It renders as a counter whose value is the sum over stripes.
func (r *Registry) Striped(name, help string, labels ...string) *Striped {
	return r.register(name, help, kindCounter, labels, func() (any, func(io.Writer, string, string)) {
		s := &Striped{}
		return s, func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, braced(l), strconv.FormatUint(s.Value(), 10))
		}
	}).(*Striped)
}

// Gauge registers (or returns the existing) gauge under name.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	return r.register(name, help, kindGauge, labels, func() (any, func(io.Writer, string, string)) {
		g := &Gauge{}
		return g, func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, braced(l), strconv.FormatInt(g.Value(), 10))
		}
	}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindGauge, labels, func() (any, func(io.Writer, string, string)) {
		return fn, func(w io.Writer, n, l string) {
			fmt.Fprintf(w, "%s%s %s\n", n, braced(l), formatFloat(fn()))
		}
	})
}

// Histogram registers (or returns the existing) histogram under name with
// the given bucket upper bounds (nil selects DefSecondsBuckets). Bounds are
// sorted and deduplicated, and an explicit +Inf bound is dropped in favor
// of the implicit final bucket, so the rendered cumulative `le` lines are
// strictly monotone — Prometheus rejects expositions where they are not. A
// NaN bound is unorderable and panics, like a kind mismatch: both are
// programming errors at registration sites.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if bounds == nil {
		bounds = DefSecondsBuckets()
	}
	for _, b := range bounds {
		if math.IsNaN(b) {
			panic(fmt.Sprintf("obs: histogram %q registered with a NaN bucket bound", name))
		}
	}
	return r.register(name, help, kindHistogram, labels, func() (any, func(io.Writer, string, string)) {
		h := newHistogram(bounds)
		return h, func(w io.Writer, n, l string) {
			cum := uint64(0)
			for i, b := range h.bounds {
				cum += h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", n, braced(joinLabels(l, `le="`+formatFloat(b)+`"`)), cum)
			}
			cum += h.counts[len(h.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", n, braced(joinLabels(l, `le="+Inf"`)), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", n, braced(l), formatFloat(h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", n, braced(l), h.Count())
		}
	}).(*Histogram)
}

// famSnapshot is one family captured under the registry lock: the header
// fields plus a copy of the children slice, so rendering and exporting can
// iterate it after unlocking while register keeps appending to the live
// slice.
type famSnapshot struct {
	name     string
	help     string
	kind     metricKind
	children []*child
}

// snapshot copies every family's header and children under the lock.
// Children are immutable after creation, so pointer copies suffice; what
// must not escape the lock is the children slice header itself, which
// register rewrites on append.
func (r *Registry) snapshot() []famSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]famSnapshot, len(r.order))
	for i, f := range r.order {
		cs := make([]*child, len(f.children))
		copy(cs, f.children)
		fams[i] = famSnapshot{name: f.name, help: f.help, kind: f.kind, children: cs}
	}
	return fams
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4): one HELP and TYPE line per family, then one sample line
// per child (several for histograms). It writes from a locked snapshot, so
// scrapes race metric registrations safely: a child registered mid-scrape
// appears in the next scrape.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.snapshot() {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind)
		for _, c := range f.children {
			c.write(w, f.name, c.labels)
		}
	}
}

// renderLabels turns variadic key/value pairs into the deterministic inner
// label string `k="v",…`, sorted by key.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ps = append(ps, pair{kv[i], kv[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	var b strings.Builder
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

// braced wraps a non-empty inner label string in the exposition braces.
func braced(inner string) string {
	if inner == "" {
		return ""
	}
	return "{" + inner + "}"
}

// joinLabels concatenates two inner label strings.
func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}

// escapeValue escapes a label value per the exposition format.
func escapeValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
