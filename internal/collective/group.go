// Package collective implements the MPI-style collective operations the
// paper's Algorithm 1 is built from — All-Gather and Reduce-Scatter — plus
// the supporting collectives (Broadcast, Reduce, All-Reduce, All-to-All,
// Gather, Scatter) used by the baseline algorithms, all running over
// arbitrary subsets ("fibers") of the simulated machine's ranks.
//
// Two algorithm families are provided, matching §5.1's assumption of
// bandwidth-optimal collectives:
//
//   - Ring algorithms: p−1 steps, per-rank bandwidth exactly (1 − 1/p)·w
//     for any group size and variable block sizes.
//   - Recursive doubling (All-Gather) and recursive halving
//     (Reduce-Scatter) — the "bidirectional exchange" algorithms of
//     Thakur et al. 2005 and Chan et al. 2007 — log₂(p) steps with the
//     same (1 − 1/p)·w bandwidth, used when the group size is a power of
//     two.
//
// Per-rank received words for both families equal the textbook collective
// cost, which the tests assert exactly; this is what makes the simulated
// Algorithm 1 meet Theorem 3's bound word-for-word.
package collective

import (
	"fmt"

	"repro/internal/machine"
)

// Algorithm selects the collective implementation family.
type Algorithm int

const (
	// Auto uses recursive doubling/halving for power-of-two group sizes
	// and ring algorithms otherwise.
	Auto Algorithm = iota
	// Ring forces the ring algorithms.
	Ring
	// Recursive forces recursive doubling/halving (panics if the group
	// size is not a power of two).
	Recursive
)

// Group is a communicator: an ordered set of machine ranks participating in
// collectives together. Each member constructs its own Group value with the
// same member list and tag base (like an MPI communicator).
type Group struct {
	rank    *machine.Rank
	members []int
	me      int // index of rank within members
	tagBase int
	alg     Algorithm

	// starts and counts are reusable integer scratch for the offset and
	// uniform-count computations, so repeated collectives on one group do
	// not allocate. A Group is confined to its rank's goroutine, and the
	// scratch is only live within a single collective call (collectives
	// that compose — AllReduce, BcastLong — are done with it before the
	// inner call starts), so a single buffer per kind suffices. The slices
	// come from the machine's integer arena and go back on Release.
	starts []int
	counts []int
}

// opcode offsets keep concurrent-by-construction collectives on disjoint
// tags. Within one collective call all messages use tagBase+opcode; FIFO
// per (src, dst, tag) plus SPMD program order make this unambiguous.
const (
	opAllGather = iota + 1
	opReduceScatter
	opBcast
	opReduce
	opAllToAll
	opGather
	opScatter
)

// NewGroup creates the communicator for rank r over the given global rank
// ids (identical order on every member). tagBase isolates this group's
// traffic from other groups that share rank pairs; callers give distinct
// bases to logically distinct communicators.
func NewGroup(r *machine.Rank, members []int, tagBase int, alg Algorithm) *Group {
	g := &Group{}
	g.Init(r, members, tagBase, alg)
	return g
}

// Init initializes a (possibly stack-allocated) Group in place, with the
// same semantics as NewGroup. Callers on the simulator's hot path use a
// Group value plus Init/Release to keep communicator setup allocation-free.
func (g *Group) Init(r *machine.Rank, members []int, tagBase int, alg Algorithm) {
	me := -1
	for i, m := range members {
		if m < 0 || m >= r.P() {
			panic(fmt.Sprintf("collective: member %d out of range", m))
		}
		if m == r.ID() {
			me = i
		}
	}
	if dupMember(members) {
		panic(fmt.Sprintf("collective: duplicate member in %v", members))
	}
	if me < 0 {
		panic(fmt.Sprintf("collective: rank %d not in group %v", r.ID(), members))
	}
	*g = Group{rank: r, members: members, me: me, tagBase: tagBase, alg: alg}
}

// Release returns the group's pooled scratch to the machine's arena. The
// group must not be used afterwards. Optional: a group that is never
// released just lets the garbage collector reclaim its scratch.
func (g *Group) Release() {
	if g.starts != nil {
		g.rank.PutInts(g.starts)
		g.starts = nil
	}
	if g.counts != nil {
		g.rank.PutInts(g.counts)
		g.counts = nil
	}
}

// dupMember reports whether members contains a duplicate: an allocation-free
// quadratic scan for small groups, a map for large ones.
func dupMember(members []int) bool {
	if len(members) <= 64 {
		for i, m := range members {
			for _, n := range members[:i] {
				if n == m {
					return true
				}
			}
		}
		return false
	}
	seen := make(map[int]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return true
		}
		seen[m] = true
	}
	return false
}

// Size returns the number of group members.
func (g *Group) Size() int { return len(g.members) }

// Index returns this rank's position within the group.
func (g *Group) Index() int { return g.me }

// Members returns the global rank ids of the group.
func (g *Group) Members() []int { return g.members }

// tag builds the message tag for an opcode within this group.
func (g *Group) tag(op int) int { return g.tagBase*64 + op }

// send/recv address peers by group index.
func (g *Group) send(peerIdx, op int, data []float64) {
	g.rank.Send(g.members[peerIdx], g.tag(op), data)
}

func (g *Group) recv(peerIdx, op int) []float64 {
	return g.rank.Recv(g.members[peerIdx], g.tag(op))
}

// recvInto receives into a caller-owned buffer, recycling the in-flight
// message buffer; it returns the received word count.
func (g *Group) recvInto(peerIdx, op int, dst []float64) int {
	return g.rank.RecvInto(g.members[peerIdx], g.tag(op), dst)
}

func (g *Group) sendRecv(dstIdx, srcIdx, op int, data []float64) []float64 {
	g.send(dstIdx, op, data)
	return g.recv(srcIdx, op)
}

// sendRecvInto is sendRecv receiving into dst (data and dst may alias; the
// send serializes first).
func (g *Group) sendRecvInto(dstIdx, srcIdx, op int, data, dst []float64) int {
	g.send(dstIdx, op, data)
	return g.recvInto(srcIdx, op, dst)
}

// useRecursive reports whether the recursive algorithms should run for this
// group under the configured Algorithm policy.
func (g *Group) useRecursive() bool {
	p := len(g.members)
	pow2 := p&(p-1) == 0
	switch g.alg {
	case Ring:
		return false
	case Recursive:
		if !pow2 {
			panic(fmt.Sprintf("collective: Recursive algorithms need power-of-two group, got %d", p))
		}
		return true
	default:
		return pow2
	}
}

// offsets converts per-member counts into start offsets plus total, using
// the group's reusable scratch. The returned slice is only valid until the
// next offsets call on this group.
func (g *Group) offsets(counts []int) (starts []int, total int) {
	starts = g.ensureInts(&g.starts, len(counts))
	for i, c := range counts {
		if c < 0 {
			panic(fmt.Sprintf("collective: negative count %d", c))
		}
		starts[i] = total
		total += c
	}
	return starts, total
}

// uniformCounts returns a counts slice of p copies of n in the group's
// reusable scratch; valid until the next uniformCounts call on this group.
func (g *Group) uniformCounts(p, n int) []int {
	c := g.ensureInts(&g.counts, p)
	for i := range c {
		c[i] = n
	}
	return c
}

// ensureInts resizes *buf to length n, reusing its backing array when it is
// large enough and drawing replacements from the machine's integer arena.
func (g *Group) ensureInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		if *buf != nil {
			g.rank.PutInts(*buf)
		}
		*buf = g.rank.GetInts(n)
	}
	*buf = (*buf)[:n]
	return *buf
}
