package collective

import "fmt"

// AllGatherBruck runs the Bruck all-gather: ⌈log₂ p⌉ rounds for any group
// size (not just powers of two), doubling the gathered prefix each round in
// a rotated index space and unrotating at the end. Bandwidth matches the
// ring at (1 − 1/p)·W; the message count drops from p−1 to ⌈log₂ p⌉, which
// is the latency-optimal trade for small blocks on non-power-of-two groups
// (Bruck et al. 1997; Thakur et al. 2005). Blocks must be equal-sized.
func (g *Group) AllGatherBruck(myBlock []float64) []float64 {
	g.countOp(mOpAllGatherBruck)
	p := len(g.members)
	w := len(myBlock)
	out := make([]float64, p*w)
	// Work in rotated space: position q holds the block of member
	// (me + q) mod p. The rotated workspace is pooled; each round's
	// payload is received directly into it.
	buf := g.rank.GetBuffer(p * w)
	copy(buf[:w], myBlock)
	have := 1
	for have < p {
		send := have
		if send > p-have {
			send = p - have
		}
		dst := (g.me - have + p) % p
		src := (g.me + have) % p
		got := g.sendRecvInto(dst, src, opAllGather, buf[:send*w], buf[have*w:(have+send)*w])
		if got != send*w {
			panic(fmt.Sprintf("collective: bruck got %d words, want %d", got, send*w))
		}
		have += send
	}
	// Unrotate: rotated position q is member (me + q) mod p.
	for q := 0; q < p; q++ {
		member := (g.me + q) % p
		copy(out[member*w:(member+1)*w], buf[q*w:(q+1)*w])
	}
	g.rank.PutBuffer(buf)
	return out
}
