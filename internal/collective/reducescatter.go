package collective

import "fmt"

// ReduceScatter reduces (sums) a vector contributed by every member and
// scatters the result in equal chunks: member i returns the i'th chunk of
// the element-wise sum. len(data) must be divisible by the group size.
func (g *Group) ReduceScatter(data []float64) []float64 {
	p := len(g.members)
	if len(data)%p != 0 {
		panic(fmt.Sprintf("collective: ReduceScatter length %d not divisible by %d", len(data), p))
	}
	return g.ReduceScatterV(data, uniformCounts(p, len(data)/p))
}

// ReduceScatterV is ReduceScatter with per-member chunk sizes: every member
// supplies a full vector of length sum(counts); member i returns the summed
// chunk of length counts[i]. Per-rank bandwidth is exactly (1 − 1/p)·W for
// balanced chunks (W − counts[me] in general) with the ring algorithm.
func (g *Group) ReduceScatterV(data []float64, counts []int) []float64 {
	p := len(g.members)
	if len(counts) != p {
		panic(fmt.Sprintf("collective: %d counts for group of %d", len(counts), p))
	}
	starts, total := offsets(counts)
	if len(data) != total {
		panic(fmt.Sprintf("collective: ReduceScatterV data length %d, counts sum %d", len(data), total))
	}
	if p == 1 {
		out := make([]float64, total)
		copy(out, data)
		return out
	}
	// Work on a copy: the reduction accumulates in place.
	buf := make([]float64, total)
	copy(buf, data)
	if g.useRecursive() {
		return g.reduceScatterHalving(buf, starts, counts)
	}
	return g.reduceScatterRing(buf, starts, counts)
}

// reduceScatterRing runs the p−1-step ring algorithm: accumulated chunk j
// travels j+1 → j+2 → … → j, gaining each member's contribution, so at
// step s member i sends chunk (i−s−1) mod p and receives chunk
// (i−s−2) mod p, which it accumulates.
func (g *Group) reduceScatterRing(buf []float64, starts, counts []int) []float64 {
	p := len(g.members)
	right := (g.me + 1) % p
	left := (g.me - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendIdx := (g.me - s - 1 + p*p) % p
		recvIdx := (g.me - s - 2 + p*p) % p
		g.send(right, opReduceScatter, buf[starts[sendIdx]:starts[sendIdx]+counts[sendIdx]])
		got := g.recv(left, opReduceScatter)
		if len(got) != counts[recvIdx] {
			panic(fmt.Sprintf("collective: reduce-scatter ring got %d words, want %d", len(got), counts[recvIdx]))
		}
		chunk := buf[starts[recvIdx] : starts[recvIdx]+counts[recvIdx]]
		for i, v := range got {
			chunk[i] += v
		}
		g.rank.Compute(float64(len(got)))
	}
	out := make([]float64, counts[g.me])
	copy(out, buf[starts[g.me]:starts[g.me]+counts[g.me]])
	return out
}

// reduceScatterHalving runs the log₂(p)-step recursive-halving algorithm
// (p must be a power of two): each step exchanges the half of the active
// member range not containing me with a partner at that distance,
// accumulating the received half.
func (g *Group) reduceScatterHalving(buf []float64, starts, counts []int) []float64 {
	p := len(g.members)
	lo, size := 0, p
	for size > 1 {
		half := size / 2
		mid := lo + half
		var partner int
		var keepLo, keepHi, giveLo, giveHi int // member-index ranges
		if g.me < mid {
			partner = g.me + half
			keepLo, keepHi = lo, mid
			giveLo, giveHi = mid, lo+size
		} else {
			partner = g.me - half
			keepLo, keepHi = mid, lo+size
			giveLo, giveHi = lo, mid
		}
		giveStart := starts[giveLo]
		giveEnd := starts[giveHi-1] + counts[giveHi-1]
		keepStart := starts[keepLo]
		keepEnd := starts[keepHi-1] + counts[keepHi-1]
		got := g.sendRecv(partner, partner, opReduceScatter, buf[giveStart:giveEnd])
		if len(got) != keepEnd-keepStart {
			panic(fmt.Sprintf("collective: reduce-scatter halving got %d words, want %d", len(got), keepEnd-keepStart))
		}
		keep := buf[keepStart:keepEnd]
		for i, v := range got {
			keep[i] += v
		}
		g.rank.Compute(float64(len(got)))
		lo, size = keepLo, half
	}
	out := make([]float64, counts[g.me])
	copy(out, buf[starts[g.me]:starts[g.me]+counts[g.me]])
	return out
}
