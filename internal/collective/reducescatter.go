package collective

import "fmt"

// ReduceScatter reduces (sums) a vector contributed by every member and
// scatters the result in equal chunks: member i returns the i'th chunk of
// the element-wise sum. len(data) must be divisible by the group size.
func (g *Group) ReduceScatter(data []float64) []float64 {
	p := len(g.members)
	if len(data)%p != 0 {
		panic(fmt.Sprintf("collective: ReduceScatter length %d not divisible by %d", len(data), p))
	}
	return g.ReduceScatterV(data, g.uniformCounts(p, len(data)/p))
}

// ReduceScatterInto is ReduceScatter writing the result into the
// caller-provided out (length len(data)/p) using scratch (length at least
// len(data)) as the working accumulation copy, so a steady-state call
// performs no heap allocation. data is not mutated.
func (g *Group) ReduceScatterInto(data, out, scratch []float64) []float64 {
	p := len(g.members)
	if len(data)%p != 0 {
		panic(fmt.Sprintf("collective: ReduceScatter length %d not divisible by %d", len(data), p))
	}
	return g.ReduceScatterVInto(data, g.uniformCounts(p, len(data)/p), out, scratch)
}

// ReduceScatterV is ReduceScatter with per-member chunk sizes: every member
// supplies a full vector of length sum(counts); member i returns the summed
// chunk of length counts[i]. Per-rank bandwidth is exactly (1 − 1/p)·W for
// balanced chunks (W − counts[me] in general) with the ring algorithm.
func (g *Group) ReduceScatterV(data []float64, counts []int) []float64 {
	if len(counts) != len(g.members) {
		panic(fmt.Sprintf("collective: %d counts for group of %d", len(counts), len(g.members)))
	}
	out := make([]float64, counts[g.me])
	scratch := g.rank.GetBuffer(len(data))
	g.ReduceScatterVInto(data, counts, out, scratch)
	g.rank.PutBuffer(scratch)
	return out
}

// ReduceScatterVInto is ReduceScatterV writing member g.Index()'s summed
// chunk into the caller-provided out (length counts[g.Index()]). scratch
// must hold at least len(data) words; it is the in-place accumulation copy
// (its prior contents are ignored), so data itself is never mutated.
// Incoming chunks land in pooled network buffers that are recycled
// immediately, keeping the per-step heap allocation at zero.
func (g *Group) ReduceScatterVInto(data []float64, counts []int, out, scratch []float64) []float64 {
	g.countOp(mOpReduceScatter)
	p := len(g.members)
	if len(counts) != p {
		panic(fmt.Sprintf("collective: %d counts for group of %d", len(counts), p))
	}
	starts, total := g.offsets(counts)
	if len(data) != total {
		panic(fmt.Sprintf("collective: ReduceScatterV data length %d, counts sum %d", len(data), total))
	}
	if len(out) != counts[g.me] {
		panic(fmt.Sprintf("collective: ReduceScatterV out has %d words, counts[%d] = %d", len(out), g.me, counts[g.me]))
	}
	if len(scratch) < total {
		panic(fmt.Sprintf("collective: ReduceScatterV scratch holds %d words, need %d", len(scratch), total))
	}
	if p == 1 {
		copy(out, data)
		return out
	}
	// Work on a copy: the reduction accumulates in place.
	buf := scratch[:total]
	copy(buf, data)
	if g.useRecursive() {
		g.reduceScatterHalving(buf, starts, counts)
	} else {
		g.reduceScatterRing(buf, starts, counts)
	}
	copy(out, buf[starts[g.me]:starts[g.me]+counts[g.me]])
	return out
}

// reduceScatterRing runs the p−1-step ring algorithm: accumulated chunk j
// travels j+1 → j+2 → … → j, gaining each member's contribution, so at
// step s member i sends chunk (i−s−1) mod p and receives chunk
// (i−s−2) mod p, which it accumulates. The final chunk of member g.me is
// left in place in buf.
func (g *Group) reduceScatterRing(buf []float64, starts, counts []int) {
	p := len(g.members)
	right := (g.me + 1) % p
	left := (g.me - 1 + p) % p
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	tmp := g.rank.GetBuffer(maxCount)
	for s := 0; s < p-1; s++ {
		sendIdx := (g.me - s - 1 + p*p) % p
		recvIdx := (g.me - s - 2 + p*p) % p
		g.send(right, opReduceScatter, buf[starts[sendIdx]:starts[sendIdx]+counts[sendIdx]])
		got := g.recvInto(left, opReduceScatter, tmp)
		if got != counts[recvIdx] {
			panic(fmt.Sprintf("collective: reduce-scatter ring got %d words, want %d", got, counts[recvIdx]))
		}
		chunk := buf[starts[recvIdx] : starts[recvIdx]+counts[recvIdx]]
		for i, v := range tmp[:got] {
			chunk[i] += v
		}
		g.rank.Compute(float64(got))
	}
	g.rank.PutBuffer(tmp)
}

// reduceScatterHalving runs the log₂(p)-step recursive-halving algorithm
// (p must be a power of two): each step exchanges the half of the active
// member range not containing me with a partner at that distance,
// accumulating the received half. The final chunk of member g.me is left
// in place in buf.
func (g *Group) reduceScatterHalving(buf []float64, starts, counts []int) {
	p := len(g.members)
	tmp := g.rank.GetBuffer(len(buf))
	lo, size := 0, p
	for size > 1 {
		half := size / 2
		mid := lo + half
		var partner int
		var keepLo, keepHi, giveLo, giveHi int // member-index ranges
		if g.me < mid {
			partner = g.me + half
			keepLo, keepHi = lo, mid
			giveLo, giveHi = mid, lo+size
		} else {
			partner = g.me - half
			keepLo, keepHi = mid, lo+size
			giveLo, giveHi = lo, mid
		}
		giveStart := starts[giveLo]
		giveEnd := starts[giveHi-1] + counts[giveHi-1]
		keepStart := starts[keepLo]
		keepEnd := starts[keepHi-1] + counts[keepHi-1]
		got := g.sendRecvInto(partner, partner, opReduceScatter, buf[giveStart:giveEnd], tmp)
		if got != keepEnd-keepStart {
			panic(fmt.Sprintf("collective: reduce-scatter halving got %d words, want %d", got, keepEnd-keepStart))
		}
		keep := buf[keepStart:keepEnd]
		for i, v := range tmp[:got] {
			keep[i] += v
		}
		g.rank.Compute(float64(got))
		lo, size = keepLo, half
	}
	g.rank.PutBuffer(tmp)
}
