package collective

import (
	"math"
	"testing"

	"repro/internal/machine"
)

// FuzzAllGatherReduceScatterDuality fuzzes group sizes, counts, and
// algorithm families against a naive oracle: All-Gather must concatenate
// exactly, Reduce-Scatter must sum exactly, and the two costs must match
// the (W − own) formula.
func FuzzAllGatherReduceScatterDuality(f *testing.F) {
	f.Add(uint8(4), uint8(3), true)
	f.Add(uint8(7), uint8(2), false)
	f.Add(uint8(1), uint8(5), true)
	f.Fuzz(func(t *testing.T, pRaw, wRaw uint8, recursive bool) {
		p := int(pRaw%12) + 1
		blockW := int(wRaw % 6)
		alg := Ring
		if recursive && p&(p-1) == 0 {
			alg = Recursive
		}
		members := make([]int, p)
		for i := range members {
			members[i] = i
		}
		world := machine.NewWorld(p, machine.BandwidthOnly())
		gathered := make([][]float64, p)
		reduced := make([][]float64, p)
		err := world.Run(func(r *machine.Rank) {
			g := NewGroup(r, members, 1, alg)
			block := make([]float64, blockW)
			for i := range block {
				block[i] = float64(r.ID()*100 + i)
			}
			gathered[r.ID()] = g.AllGather(block)
			full := make([]float64, p*blockW)
			for i := range full {
				full[i] = float64(r.ID())
			}
			reduced[r.ID()] = g.ReduceScatter(full)
		})
		if err != nil {
			t.Fatal(err)
		}
		wantSum := float64(p*(p-1)) / 2
		for rank := 0; rank < p; rank++ {
			if len(gathered[rank]) != p*blockW {
				t.Fatalf("gather length %d", len(gathered[rank]))
			}
			for m := 0; m < p; m++ {
				for i := 0; i < blockW; i++ {
					if gathered[rank][m*blockW+i] != float64(m*100+i) {
						t.Fatalf("gather wrong at member %d elem %d", m, i)
					}
				}
			}
			for _, v := range reduced[rank] {
				if math.Abs(v-wantSum) > 1e-12 {
					t.Fatalf("reduce-scatter value %v, want %v", v, wantSum)
				}
			}
		}
		// Cost: every rank receives exactly (p−1)·blockW words per op.
		for rank, rs := range world.Stats().Ranks {
			if want := float64(2 * (p - 1) * blockW); rs.WordsRecv != want {
				t.Fatalf("rank %d recv %v, want %v", rank, rs.WordsRecv, want)
			}
		}
	})
}

// FuzzBcastLongAgainstTree fuzzes message lengths and roots: the
// long-vector broadcast must deliver exactly what the tree broadcast does.
func FuzzBcastLongAgainstTree(f *testing.F) {
	f.Add(uint8(5), uint8(13), uint8(1))
	f.Add(uint8(8), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, pRaw, wRaw, rootRaw uint8) {
		p := int(pRaw%10) + 1
		words := int(wRaw % 40)
		root := int(rootRaw) % p
		payload := make([]float64, words)
		for i := range payload {
			payload[i] = float64(i * i)
		}
		members := make([]int, p)
		for i := range members {
			members[i] = i
		}
		world := machine.NewWorld(p, machine.BandwidthOnly())
		out := make([][]float64, p)
		err := world.Run(func(r *machine.Rank) {
			g := NewGroup(r, members, 1, Auto)
			var data []float64
			if r.ID() == root {
				data = payload
			}
			out[r.ID()] = g.BcastLong(data, root, words)
		})
		if err != nil {
			t.Fatal(err)
		}
		for rank := 0; rank < p; rank++ {
			if len(out[rank]) != words {
				t.Fatalf("rank %d got %d words", rank, len(out[rank]))
			}
			for i, v := range out[rank] {
				if v != payload[i] {
					t.Fatalf("rank %d elem %d = %v, want %v", rank, i, v, payload[i])
				}
			}
		}
	})
}
