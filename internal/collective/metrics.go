package collective

import "repro/internal/obs"

// Collective-operation counters, one labeled child per operation in a
// single collective_ops_total family. Counts are taken once per member per
// call at each operation's public entry point (the *VInto sinks for the
// all-gather and reduce-scatter variant families), so composite operations
// — AllReduce, BcastLong — also bump the primitives they are built from.
// Counters are striped by the calling rank's id: every member of a group
// enters the collective concurrently, and a single shared cache line here
// would serialize what the sharded scheduler keeps parallel.
var (
	mOpAllGather      = collectiveOp("allgather")
	mOpAllGatherBruck = collectiveOp("allgather-bruck")
	mOpReduceScatter  = collectiveOp("reducescatter")
	mOpAllReduce      = collectiveOp("allreduce")
	mOpBcast          = collectiveOp("bcast")
	mOpBcastLong      = collectiveOp("bcast-long")
	mOpReduce         = collectiveOp("reduce")
	mOpAllToAll       = collectiveOp("alltoall")
	mOpGather         = collectiveOp("gather")
	mOpScatter        = collectiveOp("scatter")
	mOpBarrier        = collectiveOp("barrier")
)

func collectiveOp(op string) *obs.Striped {
	return obs.Default.Striped("collective_ops_total",
		"Collective operations entered, per member call; composites also count their primitive halves.",
		"op", op)
}

// countOp bumps a collective counter for this group's rank when metrics are
// enabled.
func (g *Group) countOp(c *obs.Striped) {
	if obs.Enabled() {
		c.Inc(g.rank.ID())
	}
}
