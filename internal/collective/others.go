package collective

import "fmt"

// Bcast broadcasts data from the member with group index root to all
// members using a binomial tree (log₂(p) rounds). Every member returns the
// broadcast vector; non-root callers pass nil.
func (g *Group) Bcast(data []float64, root int) []float64 {
	g.countOp(mOpBcast)
	p := len(g.members)
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: Bcast root %d of %d", root, p))
	}
	if p == 1 {
		return data
	}
	// Virtual ranks place the root at 0.
	vrank := (g.me - root + p) % p
	// Receive phase: find the lowest set bit window in which we receive.
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			src := ((vrank - mask) + root) % p
			data = g.recv(g.indexOf(src), opBcast)
			break
		}
		mask <<= 1
	}
	// Send phase: forward to children at decreasing distances.
	mask >>= 1
	for mask > 0 {
		if vrank+mask < p {
			dst := ((vrank + mask) + root) % p
			g.send(g.indexOf(dst), opBcast, data)
		}
		mask >>= 1
	}
	return data
}

// Reduce sums the equal-length vectors of all members onto the member with
// group index root using a binomial tree. The root returns the sum (in a
// buffer the caller owns); other members return nil. Accumulation and
// receive temporaries come from the machine's buffer arena, so non-root
// members allocate nothing in steady state.
func (g *Group) Reduce(data []float64, root int) []float64 {
	g.countOp(mOpReduce)
	p := len(g.members)
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: Reduce root %d of %d", root, p))
	}
	if p == 1 {
		out := make([]float64, len(data))
		copy(out, data)
		return out
	}
	acc := g.rank.GetBuffer(len(data))
	copy(acc, data)
	var tmp []float64
	putTmp := func() {
		if tmp != nil {
			g.rank.PutBuffer(tmp)
		}
	}
	vrank := (g.me - root + p) % p
	mask := 1
	for mask < p {
		if vrank&mask != 0 {
			dst := ((vrank - mask) + root) % p
			g.send(g.indexOf(dst), opReduce, acc)
			g.rank.PutBuffer(acc)
			putTmp()
			return nil
		}
		if vrank+mask < p {
			src := ((vrank + mask) + root) % p
			if tmp == nil {
				tmp = g.rank.GetBuffer(len(data))
			}
			got := g.recvInto(g.indexOf(src), opReduce, tmp)
			if got != len(acc) {
				panic(fmt.Sprintf("collective: Reduce got %d words, want %d", got, len(acc)))
			}
			for i, v := range tmp[:got] {
				acc[i] += v
			}
			g.rank.Compute(float64(got))
		}
		mask <<= 1
	}
	putTmp()
	return acc
}

// AllReduce sums equal-length vectors across members, every member
// receiving the full result. It composes ReduceScatterVInto and
// AllGatherVInto over a balanced split, which is bandwidth-optimal at
// 2(1 − 1/p)·w; intermediates live in pooled buffers, so the only heap
// allocation is the returned result.
func (g *Group) AllReduce(data []float64) []float64 {
	g.countOp(mOpAllReduce)
	p := len(g.members)
	out := make([]float64, len(data))
	if p == 1 {
		copy(out, data)
		return out
	}
	counts := g.balancedCounts(len(data), p)
	mine := g.rank.GetBuffer(counts[g.me])
	scratch := g.rank.GetBuffer(len(data))
	g.ReduceScatterVInto(data, counts, mine, scratch)
	g.rank.PutBuffer(scratch)
	g.AllGatherVInto(mine, counts, out)
	g.rank.PutBuffer(mine)
	return out
}

// AllToAll performs a personalized exchange: blocks[i] is sent to member i,
// and the returned slice holds, per member index, the block received from
// that member. Own block is passed through locally. The pairwise-exchange
// schedule uses p−1 steps with send-to (me+s), receive-from (me−s).
func (g *Group) AllToAll(blocks [][]float64) [][]float64 {
	g.countOp(mOpAllToAll)
	p := len(g.members)
	if len(blocks) != p {
		panic(fmt.Sprintf("collective: AllToAll got %d blocks for group of %d", len(blocks), p))
	}
	out := make([][]float64, p)
	own := make([]float64, len(blocks[g.me]))
	copy(own, blocks[g.me])
	out[g.me] = own
	for s := 1; s < p; s++ {
		dst := (g.me + s) % p
		src := (g.me - s + p) % p
		out[src] = g.sendRecv(dst, src, opAllToAll, blocks[dst])
	}
	return out
}

// Gather collects every member's block at the member with group index
// root, returned as per-member slices (nil for non-roots). Non-root
// members send directly to the root; the root's bandwidth W − w_root is
// optimal for gathers.
func (g *Group) Gather(myBlock []float64, root int) [][]float64 {
	g.countOp(mOpGather)
	p := len(g.members)
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: Gather root %d of %d", root, p))
	}
	if g.me != root {
		g.send(root, opGather, myBlock)
		return nil
	}
	out := make([][]float64, p)
	own := make([]float64, len(myBlock))
	copy(own, myBlock)
	out[root] = own
	for i := 0; i < p; i++ {
		if i != root {
			out[i] = g.recv(i, opGather)
		}
	}
	return out
}

// Scatter distributes blocks from the root: member i receives blocks[i].
// Non-root callers pass nil.
func (g *Group) Scatter(blocks [][]float64, root int) []float64 {
	g.countOp(mOpScatter)
	p := len(g.members)
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: Scatter root %d of %d", root, p))
	}
	if g.me == root {
		if len(blocks) != p {
			panic(fmt.Sprintf("collective: Scatter got %d blocks for group of %d", len(blocks), p))
		}
		for i := 0; i < p; i++ {
			if i != root {
				g.send(i, opScatter, blocks[i])
			}
		}
		own := make([]float64, len(blocks[root]))
		copy(own, blocks[root])
		return own
	}
	return g.recv(root, opScatter)
}

// Barrier synchronizes the group members' clocks without charging
// communication, by a zero-word ring circulation that forces ordering and a
// clock alignment via max exchange. For measurement-phase separation on the
// whole world prefer machine.Rank.Barrier.
func (g *Group) Barrier() {
	g.countOp(mOpBarrier)
	p := len(g.members)
	if p == 1 {
		return
	}
	// Two ring sweeps of empty messages establish a happens-before chain
	// through every member and align clocks to within the (zero) cost of
	// empty messages under Beta-only cost models.
	for sweep := 0; sweep < 2; sweep++ {
		right := (g.me + 1) % p
		left := (g.me - 1 + p) % p
		g.send(right, opBcast, nil)
		g.recv(left, opBcast)
	}
}

// indexOf returns the group index of a virtual member id already in group
// index space (identity); it exists for clarity at call sites that compute
// virtual ranks.
func (g *Group) indexOf(groupIdx int) int { return groupIdx }

// balancedCounts splits total into p nearly equal integer parts in the
// group's reusable counts scratch (valid until the next counts-producing
// call on this group).
func (g *Group) balancedCounts(total, p int) []int {
	counts := g.ensureInts(&g.counts, p)
	q, r := total/p, total%p
	for i := range counts {
		counts[i] = q
		if i < r {
			counts[i]++
		}
	}
	return counts
}
