package collective

import "fmt"

// BcastLong broadcasts data from root using the long-vector algorithm of
// van de Geijn (scatter + all-gather, cf. Chan et al. 2007): the root
// binomial-scatters p chunks, then the group all-gathers them. Its critical
// path is ≈ 2(1 − 1/p)·β·w versus the binomial tree's log₂(p)·β·w — the
// right trade for large messages. The vector length must be known at every
// member (passed via words); non-roots pass nil data.
func (g *Group) BcastLong(data []float64, root, words int) []float64 {
	g.countOp(mOpBcastLong)
	p := len(g.members)
	if root < 0 || root >= p {
		panic(fmt.Sprintf("collective: BcastLong root %d of %d", root, p))
	}
	if g.me == root && len(data) != words {
		panic(fmt.Sprintf("collective: BcastLong root has %d words, declared %d", len(data), words))
	}
	if p == 1 {
		out := make([]float64, words)
		copy(out, data)
		return out
	}
	// Chunk q (in virtual-rank space, root = vrank 0) is member
	// (root+q) mod p's slice of the member-order output layout. Bundles
	// travel in vrank order so subtree ranges stay contiguous.
	counts := g.balancedCounts(words, p)
	vrank := (g.me - root + p) % p

	var mine []float64
	if vrank == 0 {
		// Build the rotated (vrank-ordered) bundle from the data in a
		// pooled workspace.
		bundle := g.rank.GetBuffer(words)
		off := 0
		for q := 0; q < p; q++ {
			member := (root + q) % p
			memberOff := memberOffset(counts, member)
			copy(bundle[off:off+counts[member]], data[memberOff:memberOff+counts[member]])
			off += counts[member]
		}
		// Scatter to children at decreasing binomial distances.
		mask := 1
		for mask < p {
			mask <<= 1
		}
		for mask >>= 1; mask > 0; mask >>= 1 {
			if mask < p {
				childLo, childSize := mask, mask
				if childLo+childSize > p {
					childSize = p - childLo
				}
				childOff := vrankOffset(counts, root, childLo)
				length := vrankOffset(counts, root, childLo+childSize) - childOff
				g.send(g.indexOf((childLo+root)%p), opScatter, bundle[childOff:childOff+length])
			}
		}
		mine = g.rank.GetBuffer(counts[g.me])
		copy(mine, bundle[:counts[g.me]])
		g.rank.PutBuffer(bundle)
	} else {
		// Receive my subtree's bundle from my binomial parent, forward
		// sub-bundles to my children, and keep my own chunk.
		lo, size := 0, 0
		var bundle []float64
		mask := 1
		for mask < p {
			if vrank&mask != 0 {
				lo, size = vrank, mask
				if lo+size > p {
					size = p - lo
				}
				bundle = g.recv(g.indexOf(((vrank-mask)+root)%p), opScatter)
				break
			}
			mask <<= 1
		}
		base := vrankOffset(counts, root, lo)
		for mask >>= 1; mask > 0; mask >>= 1 {
			if vrank+mask < lo+size {
				childLo, childSize := vrank+mask, mask
				if childLo+childSize > lo+size {
					childSize = lo + size - childLo
				}
				off := vrankOffset(counts, root, childLo) - base
				length := vrankOffset(counts, root, childLo+childSize) - vrankOffset(counts, root, childLo)
				g.send(g.indexOf((childLo+root)%p), opScatter, bundle[off:off+length])
			}
		}
		myOff := vrankOffset(counts, root, vrank) - base
		mine = g.rank.GetBuffer(counts[g.me])
		copy(mine, bundle[myOff:myOff+counts[g.me]])
		g.rank.PutBuffer(bundle)
	}
	// Phase 2: all-gather the member-order chunks. mine is copied into the
	// gather output before any send, so it can be recycled afterwards.
	out := g.AllGatherV(mine, counts)
	g.rank.PutBuffer(mine)
	return out
}

// memberOffset returns the word offset of member m's chunk in the
// member-order layout.
func memberOffset(counts []int, m int) int {
	s := 0
	for i := 0; i < m; i++ {
		s += counts[i]
	}
	return s
}

// vrankOffset returns the word offset of virtual rank v's chunk in the
// vrank-order (rotated) bundle layout.
func vrankOffset(counts []int, root, v int) int {
	p := len(counts)
	s := 0
	for q := 0; q < v; q++ {
		s += counts[(root+q)%p]
	}
	return s
}
