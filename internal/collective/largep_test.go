package collective

import (
	"testing"
)

// The large-P tests exercise the collectives at P=257 — a prime, so every
// power-of-two shortcut is off the table — which is far beyond the group
// sizes the rest of the suite uses and large enough that the sharded
// scheduler's targeted wakeups, not the old broadcast storm, carry the run.
// Under -race they double as a concurrency audit of the engine at scale.

const largeP = 257

func TestAllGatherLargeNonPowerOfTwo(t *testing.T) {
	const words = 2
	res, stats := runAll(t, largeP, Ring, func(g *Group) []float64 {
		return g.AllGather(seqBlock(g.Index(), words))
	})
	for r := 0; r < largeP; r++ {
		if len(res[r]) != words*largeP {
			t.Fatalf("rank %d result length %d, want %d", r, len(res[r]), words*largeP)
		}
		for i := 0; i < largeP; i++ {
			if res[r][words*i] != float64(i*1000) || res[r][words*i+1] != float64(i*1000+1) {
				t.Fatalf("rank %d block %d corrupted: %v", r, i, res[r][words*i:words*i+words])
			}
		}
	}
	// Ring all-gather: every rank receives exactly the other ranks' words.
	for r, rs := range stats.Ranks {
		if rs.WordsRecv != float64((largeP-1)*words) {
			t.Fatalf("rank %d received %v words, want %d", r, rs.WordsRecv, (largeP-1)*words)
		}
	}
}

func TestAllGatherBruckLargeNonPowerOfTwo(t *testing.T) {
	const words = 2
	res, _ := runAll(t, largeP, Auto, func(g *Group) []float64 {
		return g.AllGatherBruck(seqBlock(g.Index(), words))
	})
	for r := 0; r < largeP; r++ {
		if len(res[r]) != words*largeP {
			t.Fatalf("rank %d result length %d, want %d", r, len(res[r]), words*largeP)
		}
		for i := 0; i < largeP; i++ {
			if res[r][words*i] != float64(i*1000) {
				t.Fatalf("rank %d block %d corrupted: %v", r, i, res[r][words*i])
			}
		}
	}
}

func TestReduceScatterLargeNonPowerOfTwo(t *testing.T) {
	res, _ := runAll(t, largeP, Ring, func(g *Group) []float64 {
		// Rank r contributes r to every element; block b of the reduction
		// is then sum(0..P-1) everywhere.
		data := make([]float64, largeP)
		for i := range data {
			data[i] = float64(g.Index())
		}
		return g.ReduceScatter(data)
	})
	want := float64(largeP * (largeP - 1) / 2)
	for r := 0; r < largeP; r++ {
		if len(res[r]) != 1 {
			t.Fatalf("rank %d block length %d, want 1", r, len(res[r]))
		}
		if res[r][0] != want {
			t.Fatalf("rank %d reduced block = %v, want %v", r, res[r][0], want)
		}
	}
}
