package collective

import (
	"testing"

	"repro/internal/machine"
)

// collectiveRun returns a closure running a fresh 8-rank world in which
// every rank performs iters AllGatherInto + ReduceScatterInto rounds with
// caller-held pooled buffers and a stack-allocated Group — the
// steady-state pattern of the 3D algorithms.
func collectiveRun(t *testing.T, iters int) func() {
	const p = 8
	const blockLen = 64
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	return func() {
		w := machine.NewWorld(p, machine.BandwidthOnly())
		err := w.Run(func(r *machine.Rank) {
			var g Group
			g.Init(r, members, 1, Ring)
			my := r.GetBuffer(blockLen)
			gathered := r.GetBuffer(p * blockLen)
			scratch := r.GetBuffer(p * blockLen)
			chunk := r.GetBuffer(blockLen)
			for i := range my {
				my[i] = float64(r.ID()*1000 + i)
			}
			for i := 0; i < iters; i++ {
				g.AllGatherInto(my, gathered)
				g.ReduceScatterInto(gathered, chunk, scratch)
			}
			g.Release()
			r.PutBuffer(my)
			r.PutBuffer(gathered)
			r.PutBuffer(scratch)
			r.PutBuffer(chunk)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCollectiveSteadyStateAllocs pins the allocation cost of the
// collective hot path: with caller-provided output and scratch buffers,
// AllGatherInto and ReduceScatterInto must not allocate per call — the
// ring loops receive into pooled network buffers that are recycled
// immediately, and the group's count/offset scratch is reused.
func TestCollectiveSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts shift under -race instrumentation")
	}
	base := testing.AllocsPerRun(10, collectiveRun(t, 2))
	heavy := testing.AllocsPerRun(10, collectiveRun(t, 18))
	perIter := (heavy - base) / 16
	if perIter > 0.1 {
		t.Errorf("steady-state AllGatherInto+ReduceScatterInto allocates %.3f allocs/round (base run %.1f, heavy run %.1f); want ~0", perIter, base, heavy)
	}
	// Absolute ceiling for the whole 8-rank run: world construction plus
	// per-rank group setup. Each round moves 2·(p-1)·64 words through 14
	// messages per rank; pre-pooling those cost hundreds of allocs.
	if heavy > 400 {
		t.Errorf("8-rank world with 18 collective rounds costs %.1f allocs, want <= 400", heavy)
	}
}
