package collective

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/machine"
)

func TestAllGatherBruckCorrectness(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 13} {
		res, stats := runAll(t, p, Auto, func(g *Group) []float64 {
			return g.AllGatherBruck(seqBlock(g.Index(), 3))
		})
		var want []float64
		for i := 0; i < p; i++ {
			want = append(want, seqBlock(i, 3)...)
		}
		for r := 0; r < p; r++ {
			if !reflect.DeepEqual(res[r], want) {
				t.Fatalf("p=%d rank %d: %v, want %v", p, r, res[r], want)
			}
		}
		// Bandwidth equals the ring's (1-1/p)·W.
		for r, rs := range stats.Ranks {
			if rs.WordsRecv != float64((p-1)*3) {
				t.Fatalf("p=%d rank %d recv %v", p, r, rs.WordsRecv)
			}
		}
	}
}

func TestAllGatherBruckLogMessages(t *testing.T) {
	// p = 13: ring needs 12 messages, Bruck ⌈log₂13⌉ = 4.
	_, stats := runAll(t, 13, Auto, func(g *Group) []float64 {
		return g.AllGatherBruck(seqBlock(g.Index(), 2))
	})
	if got := stats.Ranks[0].MsgsSent; got != 4 {
		t.Fatalf("Bruck messages = %d, want 4", got)
	}
}

func TestBcastLongCorrectness(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 8, 11} {
		for root := 0; root < p; root += 3 {
			words := 2*p + 3 // deliberately not divisible by p
			payload := make([]float64, words)
			for i := range payload {
				payload[i] = float64(i + 1)
			}
			res, _ := runAll(t, p, Auto, func(g *Group) []float64 {
				var data []float64
				if g.Index() == root {
					data = payload
				}
				return g.BcastLong(data, root, words)
			})
			for r := 0; r < p; r++ {
				if !reflect.DeepEqual(res[r], payload) {
					t.Fatalf("p=%d root=%d rank %d: %v, want %v", p, root, r, res[r], payload)
				}
			}
		}
	}
}

// TestBcastLongCriticalPathBeatsTree: for large messages, scatter+allgather
// has a shorter simulated critical path than the binomial tree.
func TestBcastLongCriticalPathBeatsTree(t *testing.T) {
	p, words := 16, 1<<14
	payload := make([]float64, words)
	run := func(long bool) float64 {
		w := machine.NewWorld(p, machine.Config{Beta: 1})
		members := make([]int, p)
		for i := range members {
			members[i] = i
		}
		err := w.Run(func(r *machine.Rank) {
			g := NewGroup(r, members, 1, Auto)
			var data []float64
			if r.ID() == 0 {
				data = payload
			}
			if long {
				g.BcastLong(data, 0, words)
			} else {
				g.Bcast(data, 0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.Stats().CriticalPath
	}
	tree := run(false)
	long := run(true)
	if long >= tree {
		t.Fatalf("BcastLong critical path %v not below tree %v", long, tree)
	}
	// Tree ≈ log2(p)·w = 4w; long ≈ 2(1-1/p)·w < 2w.
	if long > 2.2*float64(words) {
		t.Fatalf("BcastLong critical path %v, expected ≈ %v", long, 2*float64(words))
	}
	if math.Abs(tree-4*float64(words)) > 0.2*float64(words) {
		t.Fatalf("tree critical path %v, expected ≈ %v", tree, 4*float64(words))
	}
}

func TestBcastLongValidation(t *testing.T) {
	// Root length mismatch panics (single-rank world: validation precedes
	// any communication).
	w := machine.NewWorld(1, machine.BandwidthOnly())
	err := w.Run(func(r *machine.Rank) {
		g := NewGroup(r, []int{0}, 1, Auto)
		g.BcastLong([]float64{1, 2}, 0, 3)
	})
	if err == nil {
		t.Fatal("expected error for declared-length mismatch")
	}
}

// TestEarlyExitDeadlockDetected: a rank returning while a peer still waits
// for its message is reported as a deadlock, not a hang.
func TestEarlyExitDeadlockDetected(t *testing.T) {
	w := machine.NewWorld(2, machine.BandwidthOnly())
	err := w.Run(func(r *machine.Rank) {
		if r.ID() == 1 {
			r.Recv(0, 9) // never sent
		}
	})
	if err == nil {
		t.Fatal("expected deadlock error for early rank exit")
	}
}
