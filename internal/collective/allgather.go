package collective

import "fmt"

// AllGather gathers equal-size blocks from every member and returns the
// concatenation in member order (every member returns the same result).
// Per-rank bandwidth is exactly (1 − 1/p)·W where W is the gathered size.
func (g *Group) AllGather(myBlock []float64) []float64 {
	out := make([]float64, len(g.members)*len(myBlock))
	return g.AllGatherInto(myBlock, out)
}

// AllGatherInto is AllGather writing the result into the caller-provided
// out, which must have length p·len(myBlock). The gather loops receive
// directly into out and send slices of it, so a steady-state call performs
// no heap allocation.
func (g *Group) AllGatherInto(myBlock, out []float64) []float64 {
	return g.AllGatherVInto(myBlock, g.uniformCounts(len(g.members), len(myBlock)), out)
}

// AllGatherV is AllGather with per-member block sizes. counts[i] is the
// length of member i's contribution; len(myBlock) must equal
// counts[g.Index()].
func (g *Group) AllGatherV(myBlock []float64, counts []int) []float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	return g.AllGatherVInto(myBlock, counts, make([]float64, total))
}

// AllGatherVInto is AllGatherV writing the result into the caller-provided
// out, which must have length sum(counts). Ownership of out stays with the
// caller; the collective only borrows it for the duration of the call (its
// slices are serialized into pooled network buffers on send).
func (g *Group) AllGatherVInto(myBlock []float64, counts []int, out []float64) []float64 {
	g.countOp(mOpAllGather)
	p := len(g.members)
	if len(counts) != p {
		panic(fmt.Sprintf("collective: %d counts for group of %d", len(counts), p))
	}
	if len(myBlock) != counts[g.me] {
		panic(fmt.Sprintf("collective: block size %d but counts[%d] = %d", len(myBlock), g.me, counts[g.me]))
	}
	starts, total := g.offsets(counts)
	if len(out) != total {
		panic(fmt.Sprintf("collective: allgather out has %d words, counts sum %d", len(out), total))
	}
	copy(out[starts[g.me]:], myBlock)
	if p == 1 {
		return out
	}
	if g.useRecursive() {
		g.allGatherRecursive(out, starts, counts)
	} else {
		g.allGatherRing(out, starts, counts)
	}
	return out
}

// allGatherRing runs the p−1-step ring algorithm: at step s, member i
// forwards the block of member (i−s) mod p to its right neighbour and
// receives the block of member (i−s−1) mod p from its left neighbour,
// directly into its slot of out.
func (g *Group) allGatherRing(out []float64, starts, counts []int) {
	p := len(g.members)
	right := (g.me + 1) % p
	left := (g.me - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendIdx := (g.me - s + p*p) % p
		recvIdx := (g.me - s - 1 + p*p) % p
		g.send(right, opAllGather, out[starts[sendIdx]:starts[sendIdx]+counts[sendIdx]])
		got := g.recvInto(left, opAllGather, out[starts[recvIdx]:starts[recvIdx]+counts[recvIdx]])
		if got != counts[recvIdx] {
			panic(fmt.Sprintf("collective: allgather ring got %d words, want %d", got, counts[recvIdx]))
		}
	}
}

// allGatherRecursive runs the log₂(p)-step recursive-doubling algorithm
// (p must be a power of two): at step s each member exchanges its owned
// aligned 2^s member-range with the sibling range of partner me XOR 2^s,
// receiving directly into the sibling range of out.
func (g *Group) allGatherRecursive(out []float64, starts, counts []int) {
	p := len(g.members)
	for span := 1; span < p; span <<= 1 {
		partner := g.me ^ span
		// Owned member range: the aligned block of size span containing me.
		myLo := g.me &^ (span - 1)
		theirLo := partner &^ (span - 1)
		myStart := starts[myLo]
		myEnd := starts[myLo+span-1] + counts[myLo+span-1]
		theirStart := starts[theirLo]
		theirEnd := starts[theirLo+span-1] + counts[theirLo+span-1]
		got := g.sendRecvInto(partner, partner, opAllGather, out[myStart:myEnd], out[theirStart:theirEnd])
		if got != theirEnd-theirStart {
			panic(fmt.Sprintf("collective: allgather doubling got %d words, want %d", got, theirEnd-theirStart))
		}
	}
}
