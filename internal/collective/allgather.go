package collective

import "fmt"

// AllGather gathers equal-size blocks from every member and returns the
// concatenation in member order (every member returns the same result).
// Per-rank bandwidth is exactly (1 − 1/p)·W where W is the gathered size.
func (g *Group) AllGather(myBlock []float64) []float64 {
	return g.AllGatherV(myBlock, uniformCounts(len(g.members), len(myBlock)))
}

// AllGatherV is AllGather with per-member block sizes. counts[i] is the
// length of member i's contribution; len(myBlock) must equal
// counts[g.Index()].
func (g *Group) AllGatherV(myBlock []float64, counts []int) []float64 {
	p := len(g.members)
	if len(counts) != p {
		panic(fmt.Sprintf("collective: %d counts for group of %d", len(counts), p))
	}
	if len(myBlock) != counts[g.me] {
		panic(fmt.Sprintf("collective: block size %d but counts[%d] = %d", len(myBlock), g.me, counts[g.me]))
	}
	starts, total := offsets(counts)
	out := make([]float64, total)
	copy(out[starts[g.me]:], myBlock)
	if p == 1 {
		return out
	}
	if g.useRecursive() {
		g.allGatherRecursive(out, starts, counts)
	} else {
		g.allGatherRing(out, starts, counts)
	}
	return out
}

// allGatherRing runs the p−1-step ring algorithm: at step s, member i
// forwards the block of member (i−s) mod p to its right neighbour and
// receives the block of member (i−s−1) mod p from its left neighbour.
func (g *Group) allGatherRing(out []float64, starts, counts []int) {
	p := len(g.members)
	right := (g.me + 1) % p
	left := (g.me - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendIdx := (g.me - s + p*p) % p
		recvIdx := (g.me - s - 1 + p*p) % p
		g.send(right, opAllGather, out[starts[sendIdx]:starts[sendIdx]+counts[sendIdx]])
		got := g.recv(left, opAllGather)
		if len(got) != counts[recvIdx] {
			panic(fmt.Sprintf("collective: allgather ring got %d words, want %d", len(got), counts[recvIdx]))
		}
		copy(out[starts[recvIdx]:], got)
	}
}

// allGatherRecursive runs the log₂(p)-step recursive-doubling algorithm
// (p must be a power of two): at step s each member exchanges its owned
// aligned 2^s member-range with the sibling range of partner me XOR 2^s.
func (g *Group) allGatherRecursive(out []float64, starts, counts []int) {
	p := len(g.members)
	for span := 1; span < p; span <<= 1 {
		partner := g.me ^ span
		// Owned member range: the aligned block of size span containing me.
		myLo := g.me &^ (span - 1)
		theirLo := partner &^ (span - 1)
		myStart := starts[myLo]
		myEnd := starts[myLo+span-1] + counts[myLo+span-1]
		theirStart := starts[theirLo]
		theirEnd := starts[theirLo+span-1] + counts[theirLo+span-1]
		got := g.sendRecv(partner, partner, opAllGather, out[myStart:myEnd])
		if len(got) != theirEnd-theirStart {
			panic(fmt.Sprintf("collective: allgather doubling got %d words, want %d", len(got), theirEnd-theirStart))
		}
		copy(out[theirStart:], got)
	}
}
