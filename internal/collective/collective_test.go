package collective

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/machine"
)

// runAll executes body on a fresh bandwidth-only world of p ranks with a
// whole-world group using the given algorithm, collecting per-rank results.
func runAll(t *testing.T, p int, alg Algorithm, body func(g *Group) []float64) ([][]float64, machine.WorldStats) {
	t.Helper()
	w := machine.NewWorld(p, machine.BandwidthOnly())
	members := make([]int, p)
	for i := range members {
		members[i] = i
	}
	results := make([][]float64, p)
	err := w.Run(func(r *machine.Rank) {
		g := NewGroup(r, members, 1, alg)
		results[r.ID()] = body(g)
	})
	if err != nil {
		t.Fatal(err)
	}
	return results, w.Stats()
}

func seqBlock(rank, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(rank*1000 + i)
	}
	return b
}

func TestAllGatherCorrectness(t *testing.T) {
	for _, alg := range []Algorithm{Ring, Recursive, Auto} {
		for _, p := range []int{1, 2, 4, 8} {
			res, stats := runAll(t, p, alg, func(g *Group) []float64 {
				return g.AllGather(seqBlock(g.Index(), 3))
			})
			want := []float64{}
			for i := 0; i < p; i++ {
				want = append(want, seqBlock(i, 3)...)
			}
			for r := 0; r < p; r++ {
				if !reflect.DeepEqual(res[r], want) {
					t.Fatalf("alg %v p=%d rank %d: %v, want %v", alg, p, r, res[r], want)
				}
			}
			// Bandwidth: every rank receives exactly (p-1)*3 words.
			for r, rs := range stats.Ranks {
				if rs.WordsRecv != float64((p-1)*3) {
					t.Fatalf("alg %v p=%d rank %d recv %v words, want %d", alg, p, r, rs.WordsRecv, (p-1)*3)
				}
			}
		}
	}
}

func TestAllGatherRingNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{3, 5, 6, 7} {
		res, stats := runAll(t, p, Auto, func(g *Group) []float64 {
			return g.AllGather(seqBlock(g.Index(), 2))
		})
		for r := 0; r < p; r++ {
			if len(res[r]) != 2*p {
				t.Fatalf("p=%d rank %d result length %d", p, r, len(res[r]))
			}
			for i := 0; i < p; i++ {
				if res[r][2*i] != float64(i*1000) {
					t.Fatalf("p=%d rank %d block %d wrong: %v", p, r, i, res[r][2*i])
				}
			}
		}
		for r, rs := range stats.Ranks {
			if rs.WordsRecv != float64((p-1)*2) {
				t.Fatalf("p=%d rank %d recv %v", p, r, rs.WordsRecv)
			}
		}
	}
}

func TestAllGatherVUnequalCounts(t *testing.T) {
	counts := []int{1, 4, 0, 2}
	for _, alg := range []Algorithm{Ring, Recursive} {
		res, stats := runAll(t, 4, alg, func(g *Group) []float64 {
			return g.AllGatherV(seqBlock(g.Index(), counts[g.Index()]), counts)
		})
		var want []float64
		for i, c := range counts {
			want = append(want, seqBlock(i, c)...)
		}
		for r := 0; r < 4; r++ {
			if !reflect.DeepEqual(res[r], want) {
				t.Fatalf("alg %v rank %d: %v, want %v", alg, r, res[r], want)
			}
		}
		// Each rank receives total − own words.
		total := 7
		for r, rs := range stats.Ranks {
			if rs.WordsRecv != float64(total-counts[r]) {
				t.Fatalf("alg %v rank %d recv %v, want %d", alg, r, rs.WordsRecv, total-counts[r])
			}
		}
	}
}

func TestReduceScatterCorrectness(t *testing.T) {
	for _, alg := range []Algorithm{Ring, Recursive, Auto} {
		for _, p := range []int{1, 2, 4, 8} {
			chunk := 3
			res, stats := runAll(t, p, alg, func(g *Group) []float64 {
				// Member j contributes vector with value (j+1) everywhere.
				data := make([]float64, p*chunk)
				for i := range data {
					data[i] = float64(g.Index() + 1)
				}
				return g.ReduceScatter(data)
			})
			wantVal := float64(p * (p + 1) / 2)
			for r := 0; r < p; r++ {
				if len(res[r]) != chunk {
					t.Fatalf("alg %v p=%d rank %d chunk len %d", alg, p, r, len(res[r]))
				}
				for _, v := range res[r] {
					if v != wantVal {
						t.Fatalf("alg %v p=%d rank %d value %v, want %v", alg, p, r, v, wantVal)
					}
				}
			}
			for r, rs := range stats.Ranks {
				if rs.WordsRecv != float64((p-1)*chunk) {
					t.Fatalf("alg %v p=%d rank %d recv %v, want %d", alg, p, r, rs.WordsRecv, (p-1)*chunk)
				}
			}
		}
	}
}

func TestReduceScatterRingNonPowerOfTwo(t *testing.T) {
	for _, p := range []int{3, 5, 7} {
		res, _ := runAll(t, p, Auto, func(g *Group) []float64 {
			data := make([]float64, p*2)
			for i := range data {
				data[i] = float64(i)
			}
			return g.ReduceScatter(data)
		})
		for r := 0; r < p; r++ {
			for j := 0; j < 2; j++ {
				want := float64(p) * float64(r*2+j)
				if res[r][j] != want {
					t.Fatalf("p=%d rank %d elem %d = %v, want %v", p, r, j, res[r][j], want)
				}
			}
		}
	}
}

func TestReduceScatterVUnequal(t *testing.T) {
	counts := []int{2, 0, 3}
	res, _ := runAll(t, 3, Ring, func(g *Group) []float64 {
		data := []float64{1, 2, 3, 4, 5}
		return g.ReduceScatterV(data, counts)
	})
	if !reflect.DeepEqual(res[0], []float64{3, 6}) {
		t.Fatalf("rank 0: %v", res[0])
	}
	if len(res[1]) != 0 {
		t.Fatalf("rank 1: %v", res[1])
	}
	if !reflect.DeepEqual(res[2], []float64{9, 12, 15}) {
		t.Fatalf("rank 2: %v", res[2])
	}
}

func TestReduceScatterDoesNotMutateInput(t *testing.T) {
	runAll(t, 2, Ring, func(g *Group) []float64 {
		data := []float64{1, 1}
		g.ReduceScatter(data)
		if data[0] != 1 || data[1] != 1 {
			t.Errorf("input mutated: %v", data)
		}
		return nil
	})
}

func TestBcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		for root := 0; root < p; root += 2 {
			res, _ := runAll(t, p, Auto, func(g *Group) []float64 {
				var data []float64
				if g.Index() == root {
					data = []float64{3.14, 2.71}
				}
				return g.Bcast(data, root)
			})
			for r := 0; r < p; r++ {
				if !reflect.DeepEqual(res[r], []float64{3.14, 2.71}) {
					t.Fatalf("p=%d root=%d rank %d: %v", p, root, r, res[r])
				}
			}
		}
	}
}

func TestReduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for _, root := range []int{0, p - 1} {
			res, _ := runAll(t, p, Auto, func(g *Group) []float64 {
				return g.Reduce([]float64{float64(g.Index() + 1), 1}, root)
			})
			want := []float64{float64(p * (p + 1) / 2), float64(p)}
			for r := 0; r < p; r++ {
				if r == root {
					if !reflect.DeepEqual(res[r], want) {
						t.Fatalf("p=%d root %d: %v, want %v", p, root, res[r], want)
					}
				} else if res[r] != nil {
					t.Fatalf("p=%d non-root %d returned %v", p, r, res[r])
				}
			}
		}
	}
}

func TestAllReduce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		res, stats := runAll(t, p, Auto, func(g *Group) []float64 {
			data := make([]float64, 12)
			for i := range data {
				data[i] = float64(g.Index())
			}
			return g.AllReduce(data)
		})
		want := float64(p * (p - 1) / 2)
		for r := 0; r < p; r++ {
			for _, v := range res[r] {
				if v != want {
					t.Fatalf("p=%d rank %d value %v, want %v", p, r, v, want)
				}
			}
		}
		if p > 1 {
			// Bandwidth-optimal allreduce: ≈ 2(1−1/p)·w per rank.
			wWords := 12.0
			wantBW := 2 * (1 - 1/float64(p)) * wWords
			got := stats.MaxWordsRecv
			if got > wantBW+float64(p) { // slack for uneven integer chunks
				t.Fatalf("p=%d allreduce recv %v, want ≈ %v", p, got, wantBW)
			}
		}
	}
}

func TestAllToAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		res, stats := runAll(t, p, Auto, func(g *Group) []float64 {
			blocks := make([][]float64, p)
			for i := range blocks {
				blocks[i] = []float64{float64(g.Index()*100 + i)}
			}
			got := g.AllToAll(blocks)
			flat := make([]float64, 0, p)
			for _, b := range got {
				flat = append(flat, b...)
			}
			return flat
		})
		for r := 0; r < p; r++ {
			for i := 0; i < p; i++ {
				if res[r][i] != float64(i*100+r) {
					t.Fatalf("p=%d rank %d from %d = %v, want %v", p, r, i, res[r][i], float64(i*100+r))
				}
			}
		}
		for r, rs := range stats.Ranks {
			if rs.WordsRecv != float64(p-1) {
				t.Fatalf("p=%d rank %d recv %v", p, r, rs.WordsRecv)
			}
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	p := 5
	root := 2
	res, _ := runAll(t, p, Auto, func(g *Group) []float64 {
		blocks := g.Gather(seqBlock(g.Index(), 2), root)
		var out []float64
		if g.Index() == root {
			for i, b := range blocks {
				if !reflect.DeepEqual(b, seqBlock(i, 2)) {
					t.Errorf("gathered block %d = %v", i, b)
				}
			}
			out = g.Scatter(blocks, root)
		} else {
			out = g.Scatter(nil, root)
		}
		return out
	})
	for r := 0; r < p; r++ {
		if !reflect.DeepEqual(res[r], seqBlock(r, 2)) {
			t.Fatalf("scatter returned %v to rank %d", res[r], r)
		}
	}
}

func TestSubgroupFiberCollectives(t *testing.T) {
	// Only even ranks of a 6-rank world participate; odd ranks do their
	// own group. Mirrors the fiber structure of Algorithm 1.
	w := machine.NewWorld(6, machine.BandwidthOnly())
	results := make([][]float64, 6)
	err := w.Run(func(r *machine.Rank) {
		var members []int
		base := 10
		if r.ID()%2 == 0 {
			members = []int{0, 2, 4}
		} else {
			members = []int{1, 3, 5}
			base = 20
		}
		g := NewGroup(r, members, base, Auto)
		results[r.ID()] = g.AllGather([]float64{float64(r.ID())})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0], []float64{0, 2, 4}) || !reflect.DeepEqual(results[3], []float64{1, 3, 5}) {
		t.Fatalf("fiber gathers wrong: %v / %v", results[0], results[3])
	}
}

func TestGroupValidation(t *testing.T) {
	w := machine.NewWorld(2, machine.BandwidthOnly())
	err := w.Run(func(r *machine.Rank) {
		if r.ID() == 0 {
			// Not a member.
			defer func() {
				if recover() == nil {
					t.Error("expected panic for non-member")
				}
			}()
			NewGroup(r, []int{1}, 0, Auto)
		} else {
			// Duplicate member.
			defer func() {
				if recover() == nil {
					t.Error("expected panic for duplicate member")
				}
			}()
			NewGroup(r, []int{1, 1}, 0, Auto)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecursiveRequiresPowerOfTwo(t *testing.T) {
	w := machine.NewWorld(3, machine.BandwidthOnly())
	err := w.Run(func(r *machine.Rank) {
		g := NewGroup(r, []int{0, 1, 2}, 0, Recursive)
		g.AllGather([]float64{1})
	})
	if err == nil {
		t.Fatal("expected error for Recursive on 3 ranks")
	}
}

func TestSingletonGroupOps(t *testing.T) {
	res, stats := runAll(t, 1, Auto, func(g *Group) []float64 {
		a := g.AllGather([]float64{1, 2})
		b := g.ReduceScatter([]float64{3, 4})
		c := g.AllReduce([]float64{5})
		d := g.Bcast([]float64{6}, 0)
		e := g.Reduce([]float64{7}, 0)
		g.Barrier()
		return []float64{a[0], a[1], b[0], b[1], c[0], d[0], e[0]}
	})
	if !reflect.DeepEqual(res[0], []float64{1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("singleton ops: %v", res[0])
	}
	if stats.TotalWordsSent != 0 {
		t.Fatal("singleton group communicated")
	}
}

// TestCollectiveCostFormula pins the §5.1 cost model: All-Gather and
// Reduce-Scatter of w words over p ranks each cost exactly (1 − 1/p)·w
// received words per rank, for both algorithm families.
func TestCollectiveCostFormula(t *testing.T) {
	for _, alg := range []Algorithm{Ring, Recursive} {
		for _, p := range []int{2, 4, 8, 16} {
			blockWords := 12
			gathered := blockWords * p
			_, agStats := runAll(t, p, alg, func(g *Group) []float64 {
				return g.AllGather(make([]float64, blockWords))
			})
			wantAG := (1 - 1/float64(p)) * float64(gathered)
			if math.Abs(agStats.MaxWordsRecv-wantAG) > 1e-9 {
				t.Fatalf("alg %v p=%d allgather cost %v, want %v", alg, p, agStats.MaxWordsRecv, wantAG)
			}
			_, rsStats := runAll(t, p, alg, func(g *Group) []float64 {
				return g.ReduceScatter(make([]float64, gathered))
			})
			if math.Abs(rsStats.MaxWordsRecv-wantAG) > 1e-9 {
				t.Fatalf("alg %v p=%d reduce-scatter cost %v, want %v", alg, p, rsStats.MaxWordsRecv, wantAG)
			}
		}
	}
}

// TestRecursiveFewerMessages verifies the latency ablation: recursive
// doubling uses log₂(p) messages per rank versus the ring's p−1.
func TestRecursiveFewerMessages(t *testing.T) {
	p := 16
	_, ringStats := runAll(t, p, Ring, func(g *Group) []float64 {
		return g.AllGather(make([]float64, 4))
	})
	_, recStats := runAll(t, p, Recursive, func(g *Group) []float64 {
		return g.AllGather(make([]float64, 4))
	})
	if ringStats.Ranks[0].MsgsSent != p-1 {
		t.Fatalf("ring msgs = %d, want %d", ringStats.Ranks[0].MsgsSent, p-1)
	}
	if recStats.Ranks[0].MsgsSent != 4 { // log2(16)
		t.Fatalf("recursive msgs = %d, want 4", recStats.Ranks[0].MsgsSent)
	}
}
