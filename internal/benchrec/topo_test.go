package benchrec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunTopoScalingSmall runs the topology-scaling recorder at its
// smallest cell size and checks the record carries one sample per fabric
// with sane fields and round-trips through the JSON file format.
func TestRunTopoScalingSmall(t *testing.T) {
	rec, err := RunTopoScaling([]int{64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := TopoFabrics(64)
	if len(rec.Samples) != len(fabrics) {
		t.Fatalf("got %d samples, want %d", len(rec.Samples), len(fabrics))
	}
	for i, s := range rec.Samples {
		if s.Fabric != fabrics[i] || s.P != 64 {
			t.Errorf("sample %d is %s/P=%d, want %s/P=64", i, s.Fabric, s.P, fabrics[i])
		}
		if s.Mode != "table" {
			t.Errorf("%s at P=64: mode %q, want table", s.Fabric, s.Mode)
		}
		if s.BuildNs <= 0 || s.ChargeNsPerOp <= 0 || s.ChargesPerSec <= 0 {
			t.Errorf("%s: non-positive timings %+v", s.Fabric, s)
		}
		if s.MaxChi < 1 || s.MaxHops < 1 || s.Links <= 0 {
			t.Errorf("%s: bad oracle summary %+v", s.Fabric, s)
		}
	}

	path := filepath.Join(t.TempDir(), "topo.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back TopoRecord
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmark != "TopoScaling" || len(back.Samples) != len(rec.Samples) {
		t.Errorf("round-trip lost data: %+v", back)
	}
}

// TestRunTopoScalingUnknownP checks unsupported rank counts error instead
// of writing an empty record.
func TestRunTopoScalingUnknownP(t *testing.T) {
	if _, err := RunTopoScaling([]int{7}, nil); err == nil {
		t.Fatal("P=7 should have no fabric specs")
	}
}
