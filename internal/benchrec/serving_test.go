package benchrec

import (
	"testing"
	"time"
)

func TestQuantile(t *testing.T) {
	if q := Quantile(nil, 0.5); q != 0 {
		t.Fatalf("Quantile(nil) = %v", q)
	}
	// 1..100 ms: the nearest-rank quantiles are exact.
	ds := make([]time.Duration, 100)
	for i := range ds {
		// Shuffle-ish order: Quantile must sort a copy, not trust input.
		ds[(i*37)%100] = time.Duration(i+1) * time.Millisecond
	}
	in := make([]time.Duration, len(ds))
	copy(in, ds)
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.90, 90 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.00, 1 * time.Millisecond},
	} {
		if got := Quantile(ds, tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	for i := range ds {
		if ds[i] != in[i] {
			t.Fatal("Quantile mutated its input")
		}
	}
}

func TestServingSampleOf(t *testing.T) {
	lat := []time.Duration{2 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond, 8 * time.Millisecond}
	s := ServingSampleOf("POST /v1/plan", lat, 3, 2*time.Second)
	if s.Requests != 4 || s.Errors != 3 || s.RequestsPerSec != 2 {
		t.Fatalf("sample = %+v", s)
	}
	if s.P50Ms != 4 || s.P99Ms != 8 {
		t.Fatalf("quantiles = %+v", s)
	}
}
