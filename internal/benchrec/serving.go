package benchrec

import (
	"math"
	"runtime"
	"sort"
	"time"
)

// ServingSample is one endpoint's aggregate from a load-generation run:
// request counts, sustained throughput, and latency percentiles.
type ServingSample struct {
	// Endpoint is the route the sample aggregates ("POST /v1/plan").
	Endpoint string `json:"endpoint"`
	// Requests is the number of requests that completed with a 2xx.
	Requests int `json:"requests"`
	// Errors is the number that failed (transport error or non-2xx);
	// 503s from the admission limits land here by design.
	Errors int `json:"errors"`
	// RequestsPerSec is Requests over the run's wall time.
	RequestsPerSec float64 `json:"requestsPerSec"`
	// P50Ms, P90Ms, and P99Ms are latency quantiles over the successful
	// requests, in milliseconds.
	P50Ms float64 `json:"p50Ms"`
	P90Ms float64 `json:"p90Ms"`
	P99Ms float64 `json:"p99Ms"`
}

// ServingSingleflight is the memo-dedup evidence from a run: the server's
// cache counters after the load, straight from /debug/vars. Shared counts
// lookups satisfied by waiting on a concurrent caller's in-flight
// computation — every one is a duplicate computation singleflight avoided.
type ServingSingleflight struct {
	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	CacheShared int64 `json:"cacheShared"`
	// DedupedPercent is CacheShared/(CacheMisses+CacheShared)·100: the
	// share of cold computations that concurrent identical load would have
	// duplicated without coalescing.
	DedupedPercent float64 `json:"dedupedPercent"`
}

// ServingRecord is the whole serving snapshot written to
// BENCH_serving.json by cmd/loadgen.
type ServingRecord struct {
	Benchmark  string `json:"benchmark"`
	Date       string `json:"date"`
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Clients is the number of concurrent load-generating connections.
	Clients int `json:"clients"`
	// DurationSec is the measured wall time of the run.
	DurationSec float64 `json:"durationSec"`
	// TotalRequests and TotalRequestsPerSec aggregate every endpoint.
	TotalRequests       int     `json:"totalRequests"`
	TotalRequestsPerSec float64 `json:"totalRequestsPerSec"`
	// PlanPoints is the number of strong-scaling plan points the server
	// reports having served during the run.
	PlanPoints int64 `json:"planPoints"`
	// Overloads is how many requests the per-endpoint concurrency limits
	// turned away with 503 — the admission-control pressure reading.
	Overloads int64 `json:"overloads"`
	// Singleflight is the memo-dedup evidence.
	Singleflight ServingSingleflight `json:"singleflight"`
	// Samples holds the per-endpoint aggregates.
	Samples []ServingSample `json:"samples"`
}

// NewServingRecord stamps the environment fields so records are comparable
// across machines and PRs, mirroring Record.
func NewServingRecord(clients int) ServingRecord {
	return ServingRecord{
		Benchmark:  "Serving",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Clients:    clients,
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the durations by
// nearest-rank on a sorted copy; zero when the slice is empty.
func Quantile(durations []time.Duration, q float64) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(durations))
	copy(sorted, durations)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// ServingSampleOf aggregates one endpoint's successful latencies and error
// count into a sample over the given wall time.
func ServingSampleOf(endpoint string, latencies []time.Duration, errors int, wall time.Duration) ServingSample {
	s := ServingSample{
		Endpoint: endpoint,
		Requests: len(latencies),
		Errors:   errors,
		P50Ms:    float64(Quantile(latencies, 0.50)) / 1e6,
		P90Ms:    float64(Quantile(latencies, 0.90)) / 1e6,
		P99Ms:    float64(Quantile(latencies, 0.99)) / 1e6,
	}
	if wall > 0 {
		s.RequestsPerSec = float64(len(latencies)) / wall.Seconds()
	}
	return s
}

// WriteFile writes the serving record as indented JSON, the format the
// repo tracks in git as BENCH_serving.json.
func (rec ServingRecord) WriteFile(path string) error {
	return writeJSONFile(rec, path)
}
