// Package benchrec records simulator performance to JSON so the perf
// trajectory is tracked across PRs instead of living in scrollback. It owns
// the scheduler-stress SPMD body shared by the Go benchmarks and the
// cmd/benchrec recorder, and runs the engine-scaling matrix (every machine
// engine × a list of processor counts) through testing.Benchmark, which
// works outside `go test` and reports the same ns/op the benchmarks print.
package benchrec

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/machine"
)

// ScalingRounds is the fixed per-rank round count of the scaling body; it
// keeps msgs/op comparable across records.
const ScalingRounds = 16

// ScalingBody is the scheduler-stress SPMD body of the P-scaling
// benchmarks: rounds of small-message ring shifts plus a power-of-two
// butterfly exchange, so every rank repeatedly parks and wakes while many
// peers send concurrently. Payloads are tiny on purpose — the benchmark
// measures scheduling (lock contention, wakeups, resumption), not data
// movement.
func ScalingBody(p, rounds int) func(*machine.Rank) {
	return func(r *machine.Rank) {
		buf := r.GetBuffer(8)
		for i := range buf {
			buf[i] = float64(r.ID())
		}
		scratch := r.GetBuffer(8)
		for round := 0; round < rounds; round++ {
			next := (r.ID() + 1) % p
			prev := (r.ID() + p - 1) % p
			r.SendRecvInto(next, prev, round, buf, scratch)
			if peer := r.ID() ^ (1 << (round % 10)); peer < p && peer != r.ID() {
				r.SendRecvInto(peer, peer, rounds+round, buf, scratch)
			}
		}
		r.PutBuffer(buf)
		r.PutBuffer(scratch)
	}
}

// Sample is one engine × P cell of the scaling matrix.
type Sample struct {
	Engine      string  `json:"engine"`
	P           int     `json:"p"`
	NsPerOp     float64 `json:"nsPerOp"`
	MsgsPerOp   int     `json:"msgsPerOp"`
	MsgsPerSec  float64 `json:"msgsPerSec"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	Iterations  int     `json:"iterations"`
}

// Record is the whole perf snapshot written to BENCH_engine_scaling.json.
// Environment fields make records comparable across machines and PRs.
type Record struct {
	Benchmark  string   `json:"benchmark"`
	Date       string   `json:"date"`
	GoVersion  string   `json:"goVersion"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Rounds     int      `json:"rounds"`
	Samples    []Sample `json:"samples"`
}

// RunEngineScaling measures the scaling body on every engine at every
// processor count and returns the filled record. progress, when non-nil, is
// called before each cell so a CLI can narrate long runs.
func RunEngineScaling(ps []int, progress func(engine string, p int)) Record {
	rec := Record{
		Benchmark:  "EngineScaling",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rounds:     ScalingRounds,
	}
	for _, engine := range []machine.Engine{machine.EngineGoroutine, machine.EngineEvent} {
		for _, p := range ps {
			if progress != nil {
				progress(engine.String(), p)
			}
			res := testing.Benchmark(benchCell(engine, p))
			msgs := scalingMessages(p)
			ns := float64(res.NsPerOp())
			rec.Samples = append(rec.Samples, Sample{
				Engine:      engine.String(),
				P:           p,
				NsPerOp:     ns,
				MsgsPerOp:   msgs,
				MsgsPerSec:  float64(msgs) / (ns / 1e9),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				Iterations:  res.N,
			})
		}
	}
	return rec
}

// benchCell is one matrix cell as a testing.Benchmark function; it is also
// what BenchmarkEngineScaling runs per sub-benchmark, so the recorded JSON
// and `go test -bench` measure the identical workload.
func benchCell(engine machine.Engine, p int) func(b *testing.B) {
	return func(b *testing.B) {
		body := ScalingBody(p, ScalingRounds)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w, err := machine.New(p, machine.BandwidthOnly(), machine.WithEngine(engine))
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Run(body); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(scalingMessages(p)), "msgs/op")
	}
}

// Bench exposes one matrix cell to `go test -bench` harnesses.
func Bench(b *testing.B, engine machine.Engine, p int) {
	benchCell(engine, p)(b)
}

// scalingMessages is the exact message count ScalingBody generates: every
// rank sends one ring shift per round plus, when its butterfly partner is
// in range, one exchange message each way.
func scalingMessages(p int) int {
	msgs := ScalingRounds * p // ring shifts
	for round := 0; round < ScalingRounds; round++ {
		bit := 1 << (round % 10)
		for id := 0; id < p; id++ {
			if peer := id ^ bit; peer < p && peer != id {
				msgs++
			}
		}
	}
	return msgs
}

// CountingRun simulates one BandwidthOnly counting world of p ranks on the
// given engine — the regime the event backend exists for at P ≥ 10^6 — and
// returns wall time plus the stats that prove the run really happened.
func CountingRun(engine machine.Engine, p int) (wall time.Duration, stats machine.WorldStats, err error) {
	w, err := machine.New(p, machine.BandwidthOnly(), machine.WithEngine(engine))
	if err != nil {
		return 0, machine.WorldStats{}, err
	}
	start := time.Now()
	if err := w.Run(func(r *machine.Rank) {
		next := (r.ID() + 1) % p
		prev := (r.ID() + p - 1) % p
		buf := []float64{float64(r.ID())}
		scratch := make([]float64, 1)
		r.SendRecvInto(next, prev, 0, buf, scratch)
		r.Barrier()
		r.SendRecvInto(prev, next, 1, buf, scratch)
	}); err != nil {
		return 0, machine.WorldStats{}, err
	}
	return time.Since(start), w.Stats(), nil
}

// WriteFile writes the record as indented JSON, the format the repo tracks
// in git as BENCH_engine_scaling.json.
func (rec Record) WriteFile(path string) error {
	return writeJSONFile(rec, path)
}

// writeJSONFile writes v as indented JSON with a trailing newline, the
// common format of every BENCH_*.json the repo tracks.
func writeJSONFile(v any, path string) error {
	blob, err := json.MarshalIndent(v, "", "\t")
	if err != nil {
		return fmt.Errorf("benchrec: encoding record: %w", err)
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}
