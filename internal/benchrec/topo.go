package benchrec

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/topo"
)

// TopoSample is one fabric × P cell of the topology-scaling record:
// charge-oracle construction time and per-message pricing throughput.
type TopoSample struct {
	Fabric string `json:"fabric"`
	P      int    `json:"p"`
	// Mode is "table" (per-pair fast path, P ≤ 2048) or "walk" (O(hops)
	// arithmetic pricing at larger P).
	Mode string `json:"mode"`
	// Links is the fabric's link id space — the oracle's memory scale.
	Links int `json:"links"`
	// BuildNs is NewNetwork wall time in nanoseconds.
	BuildNs float64 `json:"buildNs"`
	// ChargeNsPerOp and ChargesPerSec measure the Charge hot path.
	ChargeNsPerOp  float64 `json:"chargeNsPerOp"`
	ChargesPerSec  float64 `json:"chargesPerSec"`
	ChargeAllocsOp int64   `json:"chargeAllocsPerOp"`
	// MaxChi and MaxHops summarize the built oracle, tying each perf
	// sample to the contention model it priced.
	MaxChi  float64 `json:"maxChi"`
	MaxHops int     `json:"maxHops"`
}

// TopoRecord is the snapshot written to BENCH_topo_scaling.json.
type TopoRecord struct {
	Benchmark  string       `json:"benchmark"`
	Date       string       `json:"date"`
	GoVersion  string       `json:"goVersion"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Samples    []TopoSample `json:"samples"`
}

// TopoFabrics names one spec per fabric kind at each supported rank count:
// a near-cubic torus, a full-bisection fat-tree, and 64-rank (or smaller)
// two-level nodes.
func TopoFabrics(p int) []string {
	switch p {
	case 64:
		return []string{"twolevel=8", "torus=4x4x4", "fattree=4x3"}
	case 1024:
		return []string{"twolevel=32", "torus=8x8x16", "fattree=4x5"}
	case 4096:
		return []string{"twolevel=64", "torus=16x16x16", "fattree=4x6"}
	case 1 << 16:
		return []string{"twolevel=64", "torus=16x16x16x16", "fattree=4x8"}
	default:
		return nil
	}
}

// RunTopoScaling measures charge-oracle construction and Charge throughput
// for every fabric at every rank count and returns the filled record.
// progress, when non-nil, is called before each cell.
func RunTopoScaling(ps []int, progress func(fabric string, p int)) (TopoRecord, error) {
	rec := TopoRecord{
		Benchmark:  "TopoScaling",
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, p := range ps {
		fabrics := TopoFabrics(p)
		if fabrics == nil {
			return TopoRecord{}, fmt.Errorf("benchrec: no fabric specs for P=%d (supported: 64, 1024, 4096, 65536)", p)
		}
		for _, spec := range fabrics {
			if progress != nil {
				progress(spec, p)
			}
			sample, err := topoCell(spec, p)
			if err != nil {
				return TopoRecord{}, err
			}
			rec.Samples = append(rec.Samples, sample)
		}
	}
	return rec, nil
}

// topoCell builds one fabric's charge oracle (best construction time of
// three) and benchmarks Charge over a strided pair cycle.
func topoCell(spec string, p int) (TopoSample, error) {
	t, err := topo.Parse(spec, p, topo.Link{Alpha: 1, Beta: 1})
	if err != nil {
		return TopoSample{}, err
	}
	pl, err := topo.PlaceRanks(p, t, topo.Contiguous)
	if err != nil {
		return TopoSample{}, err
	}
	var n *topo.Network
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		n, err = topo.NewNetwork(t, pl)
		if err != nil {
			return TopoSample{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var sink float64
		s, d := 0, 1
		for i := 0; i < b.N; i++ {
			a, bb := n.Charge(s, d)
			sink += a + bb
			s = (s + 479) % p
			d = (d + 281) % p
			if s == d {
				d = (d + 1) % p
			}
		}
		topoSink = sink
	})
	mode := "walk"
	if n.Tabulated() {
		mode = "table"
	}
	ns := float64(res.NsPerOp())
	return TopoSample{
		Fabric:         spec,
		P:              p,
		Mode:           mode,
		Links:          t.NumLinks(),
		BuildNs:        float64(best.Nanoseconds()),
		ChargeNsPerOp:  ns,
		ChargesPerSec:  1e9 / ns,
		ChargeAllocsOp: res.AllocsPerOp(),
		MaxChi:         n.MaxCongestion(),
		MaxHops:        n.MaxHops(),
	}, nil
}

var topoSink float64

// WriteFile writes the record as indented JSON, the format the repo tracks
// in git as BENCH_topo_scaling.json.
func (rec TopoRecord) WriteFile(path string) error {
	return writeJSONFile(rec, path)
}
