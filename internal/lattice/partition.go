package lattice

import "fmt"

// Partition is an assignment of the full n1×n2×n3 matmul iteration space to
// P processors: Parts[r] is the set of scalar multiplications processor r
// performs. It is the object the proof of Theorem 3 quantifies over — any
// partition whatsoever, not just grid-shaped ones.
type Partition struct {
	N1, N2, N3 int
	Parts      []*Set
}

// P returns the number of processors.
func (pt *Partition) P() int { return len(pt.Parts) }

// Validate checks that the parts are disjoint and exactly cover the
// iteration space.
func (pt *Partition) Validate() error {
	seen := make(map[Point]int)
	for r, part := range pt.Parts {
		for _, p := range part.Points() {
			if p.I1 < 0 || p.I1 >= pt.N1 || p.I2 < 0 || p.I2 >= pt.N2 || p.I3 < 0 || p.I3 >= pt.N3 {
				return fmt.Errorf("lattice: point %v of part %d outside %dx%dx%d", p, r, pt.N1, pt.N2, pt.N3)
			}
			if prev, dup := seen[p]; dup {
				return fmt.Errorf("lattice: point %v assigned to both %d and %d", p, prev, r)
			}
			seen[p] = r
		}
	}
	if total := pt.N1 * pt.N2 * pt.N3; len(seen) != total {
		return fmt.Errorf("lattice: partition covers %d of %d points", len(seen), total)
	}
	return nil
}

// MaxLoadedProjectionSum returns the largest projection sum
// |φ_A| + |φ_B| + |φ_C| among processors performing at least a 1/P share of
// the multiplications — the quantity Theorem 3 proves is at least D. The
// boolean reports whether any processor met the share condition (always
// true for computation-balanced partitions).
func (pt *Partition) MaxLoadedProjectionSum() (int, bool) {
	total := int64(pt.N1) * int64(pt.N2) * int64(pt.N3)
	p := int64(pt.P())
	best, found := 0, false
	for _, part := range pt.Parts {
		if int64(part.Len())*p < total {
			continue
		}
		found = true
		if s := part.ProjectionSum(); s > best {
			best = s
		}
	}
	return best, found
}

// CheckLowerBoundInvariants verifies, for every part, the Loomis-Whitney
// inequality and the Lemma 1 access bounds (vacuous for parts below the
// 1/P share). It returns the first violation, which the paper proves
// cannot exist.
func (pt *Partition) CheckLowerBoundInvariants() error {
	for r, part := range pt.Parts {
		if !part.LoomisWhitneyHolds() {
			return fmt.Errorf("lattice: Loomis-Whitney violated by part %d", r)
		}
		if !SatisfiesAccessBounds(part, pt.N1, pt.N2, pt.N3, pt.P()) {
			return fmt.Errorf("lattice: Lemma 1 access bounds violated by part %d", r)
		}
	}
	return nil
}

// BrickPartition builds Algorithm 1's assignment: the iteration space cut
// into a p1×p2×p3 grid of balanced bricks (processor (i,j,k) in row-major
// order gets brick (i,j,k)). With the §5.2 optimal grid, its loaded
// projection sum equals D exactly — the geometric face of tightness.
func BrickPartition(n1, n2, n3, p1, p2, p3 int) *Partition {
	if p1 <= 0 || p2 <= 0 || p3 <= 0 {
		panic(fmt.Sprintf("lattice: grid %dx%dx%d", p1, p2, p3))
	}
	cut := func(n, p, i int) (int, int) {
		q, r := n/p, n%p
		lo := i*q + min(i, r)
		size := q
		if i < r {
			size++
		}
		return lo, lo + size
	}
	pt := &Partition{N1: n1, N2: n2, N3: n3}
	for i := 0; i < p1; i++ {
		lo1, hi1 := cut(n1, p1, i)
		for j := 0; j < p2; j++ {
			lo2, hi2 := cut(n2, p2, j)
			for k := 0; k < p3; k++ {
				lo3, hi3 := cut(n3, p3, k)
				pt.Parts = append(pt.Parts, Brick(lo1, hi1, lo2, hi2, lo3, hi3))
			}
		}
	}
	return pt
}

// RandomPartition assigns every point of the iteration space independently
// and uniformly to one of p processors (deterministically from seed). Such
// partitions are computation-balanced in expectation but have far larger
// projections than bricks — they exhibit the gap between arbitrary
// parallelizations and the communication-optimal one.
func RandomPartition(n1, n2, n3, p int, seed uint64) *Partition {
	if p <= 0 {
		panic(fmt.Sprintf("lattice: P = %d", p))
	}
	pt := &Partition{N1: n1, N2: n2, N3: n3}
	for r := 0; r < p; r++ {
		pt.Parts = append(pt.Parts, NewSet())
	}
	rng := splitMix64{state: seed}
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				r := int(rng.next() % uint64(p))
				pt.Parts[r].Add(Point{i1, i2, i3})
			}
		}
	}
	return pt
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
