package lattice

import (
	"testing"

	"repro/internal/core"
)

func TestBrickPartitionValidates(t *testing.T) {
	pt := BrickPartition(6, 5, 4, 2, 3, 2)
	if pt.P() != 12 {
		t.Fatalf("P = %d", pt.P())
	}
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pt.CheckLowerBoundInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPartitionValidates(t *testing.T) {
	pt := RandomPartition(5, 5, 5, 4, 99)
	if err := pt.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pt.CheckLowerBoundInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	// Overlapping parts.
	pt := &Partition{N1: 2, N2: 1, N3: 1, Parts: []*Set{NewSet(), NewSet()}}
	pt.Parts[0].Add(Point{0, 0, 0})
	pt.Parts[1].Add(Point{0, 0, 0})
	if err := pt.Validate(); err == nil {
		t.Fatal("expected duplicate-point error")
	}
	// Incomplete cover.
	pt2 := &Partition{N1: 2, N2: 1, N3: 1, Parts: []*Set{NewSet()}}
	pt2.Parts[0].Add(Point{0, 0, 0})
	if err := pt2.Validate(); err == nil {
		t.Fatal("expected coverage error")
	}
	// Out-of-range point.
	pt3 := &Partition{N1: 1, N2: 1, N3: 1, Parts: []*Set{NewSet()}}
	pt3.Parts[0].Add(Point{5, 0, 0})
	if err := pt3.Validate(); err == nil {
		t.Fatal("expected range error")
	}
}

// TestBrickPartitionAttainsD is the geometric tightness statement: with
// the §5.2 optimal grid, the loaded projection sum of Algorithm 1's brick
// partition equals the Lemma 2 optimum D exactly, in all three cases.
func TestBrickPartitionAttainsD(t *testing.T) {
	d := core.NewDims(32, 8, 2) // thresholds m/n = 4, mn/k² = 64
	grids := []struct {
		p          int
		g1, g2, g3 int
	}{
		{4, 4, 1, 1},    // Case 1 (boundary)
		{16, 8, 2, 1},   // Case 2
		{64, 16, 4, 1},  // Case 2/3 boundary
		{512, 32, 8, 2}, // Case 3 (unit bricks)
	}
	for _, c := range grids {
		pt := BrickPartition(d.N1, d.N2, d.N3, c.g1, c.g2, c.g3)
		sum, ok := pt.MaxLoadedProjectionSum()
		if !ok {
			t.Fatalf("P=%d: no loaded processor", c.p)
		}
		want := core.D(d, c.p)
		if float64(sum) != want {
			t.Errorf("P=%d grid %dx%dx%d: projection sum %d, D = %v",
				c.p, c.g1, c.g2, c.g3, sum, want)
		}
	}
}

// TestAnyPartitionRespectsD samples partitions of several shapes and
// checks the Theorem 3 inequality max projection sum ≥ D on each — the
// empirical form of the main theorem.
func TestAnyPartitionRespectsD(t *testing.T) {
	d := core.NewDims(8, 6, 4)
	for p := 1; p <= 8; p++ {
		// Random partitions.
		for seed := uint64(0); seed < 5; seed++ {
			pt := RandomPartition(d.N1, d.N2, d.N3, p, seed)
			sum, ok := pt.MaxLoadedProjectionSum()
			if !ok {
				continue // no processor met the 1/P share; theorem silent
			}
			if float64(sum) < core.D(d, p)-1e-9 {
				t.Errorf("P=%d seed=%d: projection sum %d below D = %v", p, seed, sum, core.D(d, p))
			}
		}
		// Deliberately bad brick grids (wrong orientation) still respect D.
		pt := BrickPartition(d.N1, d.N2, d.N3, 1, 1, p)
		if p <= d.N3 {
			sum, ok := pt.MaxLoadedProjectionSum()
			if ok && float64(sum) < core.D(d, p)-1e-9 {
				t.Errorf("P=%d misoriented grid: projection sum %d below D = %v", p, sum, core.D(d, p))
			}
		}
	}
}

// TestRandomPartitionWorseThanBricks quantifies why grids matter: a random
// balanced assignment has a far larger data footprint than the brick
// partition on the same problem.
func TestRandomPartitionWorseThanBricks(t *testing.T) {
	n, p := 8, 8
	brick := BrickPartition(n, n, n, 2, 2, 2)
	random := RandomPartition(n, n, n, p, 1)
	bs, _ := brick.MaxLoadedProjectionSum()
	rs, ok := random.MaxLoadedProjectionSum()
	if !ok {
		t.Skip("random partition happened to be unbalanced")
	}
	if rs <= bs {
		t.Errorf("random projection sum %d not worse than brick %d", rs, bs)
	}
}

func TestBrickPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BrickPartition(4, 4, 4, 0, 1, 1)
}

func TestRandomPartitionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RandomPartition(4, 4, 4, 0, 1)
}
