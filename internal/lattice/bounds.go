package lattice

// This file carries the lattice-level statements of the paper's Lemma 1
// (§4.1): lower bounds on individual array access for a processor that
// performs at least a 1/P fraction of an n1×n2×n3 iteration space.

// AccessLowerBounds returns the per-array access lower bounds of Lemma 1 for
// a processor performing at least 1/P of the multiplications of an
// n1×n2 · n2×n3 product: it must access at least n1·n2/P elements of A,
// n2·n3/P elements of B, and contribute to at least n1·n3/P elements of C.
// The values are returned as exact rationals evaluated in float64.
func AccessLowerBounds(n1, n2, n3 int, p int) (a, b, c float64) {
	fp := float64(p)
	return float64(n1) * float64(n2) / fp,
		float64(n2) * float64(n3) / fp,
		float64(n1) * float64(n3) / fp
}

// SatisfiesAccessBounds reports whether the projections of V satisfy the
// Lemma 1 bounds for an n1×n2×n3 space divided among p processors, assuming
// V holds at least a 1/p share of the multiplications. It returns false
// only when V's share is ≥ 1/p yet some projection is below its bound —
// which Lemma 1 proves impossible — so property tests expect true whenever
// the share condition holds.
func SatisfiesAccessBounds(v *Set, n1, n2, n3, p int) bool {
	if n1 <= 0 || n2 <= 0 || n3 <= 0 || p <= 0 {
		return true
	}
	// Exact integer comparisons in the overflow-free style of
	// core.Dims.Validate: for positive integers, x ≥ t/p ⇔ x ≥ ⌈t/p⌉, and
	// a·b > limit ⇔ a > limit/b under integer division, so no product is
	// formed before it is known to fit and none of the rational bounds
	// n1·n2/p, n2·n3/p, n1·n3/p is rounded through float64.
	const maxInt64 = int64(^uint64(0) >> 1)
	a, b, c := int64(n1), int64(n2), int64(n3)
	if a > maxInt64/b || b > maxInt64/c || a > maxInt64/c || a*b > maxInt64/c {
		// The iteration space overflows int64, so no materialized Set
		// reaches a 1/p share of it; Lemma 1 is vacuous. (The old float64
		// comparison wrapped the product here and could answer false.)
		return true
	}
	ceilDiv := func(t int64) int64 { return (t-1)/int64(p) + 1 }
	if int64(v.Len()) < ceilDiv(a*b*c) {
		// The processor performs less than 1/p of the work; Lemma 1 is
		// silent about it.
		return true
	}
	pa, pb, pc := v.Projections()
	return int64(pa) >= ceilDiv(a*b) && int64(pb) >= ceilDiv(b*c) && int64(pc) >= ceilDiv(a*c)
}

// MultiplicationsPerElement returns how many scalar multiplications each
// element of A, B, and C participates in (n3, n1, and n2 respectively) —
// the counting fact Lemma 1's proof rests on.
func MultiplicationsPerElement(n1, n2, n3 int) (perA, perB, perC int) {
	return n3, n1, n2
}
