package lattice

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := NewSet()
	if s.Len() != 0 {
		t.Fatal("new set not empty")
	}
	p := Point{1, 2, 3}
	s.Add(p)
	s.Add(p) // duplicate
	if s.Len() != 1 || !s.Contains(p) || s.Contains(Point{0, 0, 0}) {
		t.Fatalf("set state wrong after adds: len=%d", s.Len())
	}
	if pts := s.Points(); len(pts) != 1 || pts[0] != p {
		t.Fatalf("Points() = %v", pts)
	}
}

func TestBrickProjections(t *testing.T) {
	// A 2×3×4 brick: |V|=24, |φ_A|=6, |φ_B|=12, |φ_C|=8.
	b := Brick(0, 2, 0, 3, 0, 4)
	if b.Len() != 24 {
		t.Fatalf("|V| = %d", b.Len())
	}
	pa, pb, pc := b.Projections()
	if pa != 6 || pb != 12 || pc != 8 {
		t.Fatalf("projections = %d %d %d, want 6 12 8", pa, pb, pc)
	}
	if b.ProjectionSum() != 26 {
		t.Fatalf("sum = %d", b.ProjectionSum())
	}
	if b.LoomisWhitneySlack() != 6*12*8-24 {
		t.Fatalf("slack = %d", b.LoomisWhitneySlack())
	}
}

func TestBrickOffsetDoesNotChangeSizes(t *testing.T) {
	a := Brick(0, 2, 0, 3, 0, 4)
	b := Brick(10, 12, 20, 23, 30, 34)
	pa1, pb1, pc1 := a.Projections()
	pa2, pb2, pc2 := b.Projections()
	if pa1 != pa2 || pb1 != pb2 || pc1 != pc2 || a.Len() != b.Len() {
		t.Fatal("translated brick has different projection sizes")
	}
}

func TestBrickEmptyAndInverted(t *testing.T) {
	if Brick(0, 0, 0, 5, 0, 5).Len() != 0 {
		t.Fatal("empty brick not empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("inverted brick should panic")
		}
	}()
	Brick(3, 1, 0, 2, 0, 2)
}

func TestLoomisWhitneyOnBricksIsTight(t *testing.T) {
	// For axis-aligned bricks the LW inequality becomes |V| = product of
	// *side-wise* projections only when the brick is "full"; the standard
	// statement uses 2D projections: |V| = d1d2d3 and
	// |φ_A||φ_B||φ_C| = (d1d2)(d2d3)(d1d3) = (d1d2d3)², so slack is
	// |V|² − |V|.
	for _, d := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 2, 2}} {
		b := Brick(0, d[0], 0, d[1], 0, d[2])
		v := int64(b.Len())
		if b.LoomisWhitneySlack() != v*v-v {
			t.Fatalf("brick %v slack = %d, want %d", d, b.LoomisWhitneySlack(), v*v-v)
		}
	}
}

func TestLoomisWhitneyRandomSubsets(t *testing.T) {
	f := func(seed uint64, probRaw uint8) bool {
		prob := float64(probRaw) / 255
		s := RandomSubset(5, 6, 4, prob, seed)
		return s.LoomisWhitneyHolds()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoomisWhitneyAdversarialShapes(t *testing.T) {
	// A diagonal line: |V| = n, projections all n → n ≤ n³.
	line := NewSet()
	for i := 0; i < 10; i++ {
		line.Add(Point{i, i, i})
	}
	if !line.LoomisWhitneyHolds() {
		t.Fatal("LW fails on diagonal line")
	}
	// A single plane slab i2 = 0: |V| = n², φ_A = n, φ_B = n, φ_C = n².
	slab := Brick(0, 7, 0, 1, 0, 7)
	pa, pb, pc := slab.Projections()
	if pa != 7 || pb != 7 || pc != 49 {
		t.Fatalf("slab projections %d %d %d", pa, pb, pc)
	}
	if !slab.LoomisWhitneyHolds() {
		t.Fatal("LW fails on slab")
	}
}

func TestFullIterationSpace(t *testing.T) {
	s := FullIterationSpace(3, 4, 5)
	if s.Len() != 60 {
		t.Fatalf("|V| = %d", s.Len())
	}
	pa, pb, pc := s.Projections()
	if pa != 12 || pb != 20 || pc != 15 {
		t.Fatalf("projections %d %d %d", pa, pb, pc)
	}
}

func TestAccessLowerBounds(t *testing.T) {
	a, b, c := AccessLowerBounds(6, 4, 2, 4)
	if a != 6 || b != 2 || c != 3 {
		t.Fatalf("bounds = %v %v %v, want 6 2 3", a, b, c)
	}
}

func TestMultiplicationsPerElement(t *testing.T) {
	pa, pb, pc := MultiplicationsPerElement(3, 4, 5)
	if pa != 5 || pb != 3 || pc != 4 {
		t.Fatalf("per-element counts %d %d %d", pa, pb, pc)
	}
}

// TestLemma1OnBalancedBricks verifies Lemma 1 empirically: any brick holding
// at least 1/P of the iteration space has projections at least as large as
// the per-array bounds.
func TestLemma1OnBalancedBricks(t *testing.T) {
	n1, n2, n3 := 8, 6, 4
	for _, p := range []int{1, 2, 4, 8} {
		// Partition i1 into p equal slabs; each holds exactly 1/p of work.
		w := n1 / p
		for r := 0; r < p; r++ {
			v := Brick(r*w, (r+1)*w, 0, n2, 0, n3)
			if !SatisfiesAccessBounds(v, n1, n2, n3, p) {
				t.Fatalf("Lemma 1 violated for slab %d of %d", r, p)
			}
		}
	}
}

// TestLemma1RandomAssignments verifies Lemma 1 on random partitions of the
// iteration space: whichever processor ends up with ≥ 1/P of the points must
// satisfy the access bounds.
func TestLemma1RandomAssignments(t *testing.T) {
	n1, n2, n3, p := 6, 5, 4, 3
	full := FullIterationSpace(n1, n2, n3)
	for seed := uint64(0); seed < 20; seed++ {
		rng := splitMix64{state: seed}
		parts := make([]*Set, p)
		for i := range parts {
			parts[i] = NewSet()
		}
		for _, pt := range full.Points() {
			parts[int(rng.next()%uint64(p))].Add(pt)
		}
		for i, v := range parts {
			if !SatisfiesAccessBounds(v, n1, n2, n3, p) {
				t.Fatalf("seed %d part %d violates Lemma 1 (|V|=%d)", seed, i, v.Len())
			}
		}
	}
}

func TestSatisfiesAccessBoundsSmallShare(t *testing.T) {
	// A set with less than 1/P of the work is vacuously fine.
	v := Brick(0, 1, 0, 1, 0, 1)
	if !SatisfiesAccessBounds(v, 100, 100, 100, 2) {
		t.Fatal("small share should be vacuously accepted")
	}
}

// TestSatisfiesAccessBoundsHugeDims regresses the integer-overflow bug:
// with n1 = n2 = n3 = 2^32 the old int64 triple product wrapped to zero,
// so a one-point set "held a 1/p share" and was then rejected against
// float64 bounds near 2^63. The overflow-free comparison answers true
// (vacuously — no materialized set reaches a 1/p share of a space that
// overflows int64).
func TestSatisfiesAccessBoundsHugeDims(t *testing.T) {
	v := Brick(0, 1, 0, 1, 0, 1)
	n := 1 << 32
	if !SatisfiesAccessBounds(v, n, n, n, 2) {
		t.Fatal("huge dims must be vacuously accepted, not rejected via overflow")
	}
	// Just under the guard: the product 2^17·2^17·2^18 = 2^52 fits, the
	// one-point set is below the share, still vacuous.
	if !SatisfiesAccessBounds(v, 1<<17, 1<<17, 1<<18, 4) {
		t.Fatal("sub-2^53 dims with a tiny set should be vacuously accepted")
	}
}

// TestSatisfiesAccessBoundsExactCeil pins the exact rational comparison:
// a processor holding a 1/p share must meet ⌈n·n/p⌉ on every projection,
// with no float64 division in the way. The full space trivially does.
func TestSatisfiesAccessBoundsExactCeil(t *testing.T) {
	full := FullIterationSpace(5, 2, 3)
	for p := 1; p <= 7; p++ {
		if !SatisfiesAccessBounds(full, 5, 2, 3, p) {
			t.Fatalf("full space rejected at p=%d", p)
		}
	}
}

func TestRandomSubsetDeterministic(t *testing.T) {
	a := RandomSubset(4, 4, 4, 0.5, 9)
	b := RandomSubset(4, 4, 4, 0.5, 9)
	if a.Len() != b.Len() {
		t.Fatal("RandomSubset not deterministic")
	}
	for _, p := range a.Points() {
		if !b.Contains(p) {
			t.Fatal("RandomSubset not deterministic in membership")
		}
	}
	if RandomSubset(4, 4, 4, 0, 1).Len() != 0 {
		t.Fatal("prob 0 should give empty set")
	}
	if RandomSubset(3, 3, 3, 1.0, 1).Len() != 27 {
		t.Fatal("prob 1 should give full set")
	}
}
