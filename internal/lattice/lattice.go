// Package lattice implements the discrete-geometry substrate behind the
// paper's lower-bound proofs: finite sets of 3D lattice points (elements of
// the matrix multiplication iteration space), their projections onto the
// three matrices, the Loomis-Whitney inequality (the paper's Lemma 1 of §3.2,
// |V| ≤ |φ_i(V)|·|φ_j(V)|·|φ_k(V)|), and the per-array access lower bounds of
// Lemma 1 of §4.1.
//
// A point (i1, i2, i3) represents the scalar multiplication
// A(i1,i2)·B(i2,i3) contributing to C(i1,i3). The projection onto A keeps
// (i1,i2), onto B keeps (i2,i3), and onto C keeps (i1,i3). The package lets
// tests and experiments check, on concrete work assignments, that the sum of
// projection sizes respects Theorem 3's optimization-based bound, and that
// Algorithm 1's brick assignment achieves it with equality.
package lattice

import "fmt"

// Point is a lattice point (I1, I2, I3) in the matmul iteration space:
// the scalar multiplication A(I1,I2)·B(I2,I3) contributing to C(I1,I3).
type Point struct {
	I1, I2, I3 int
}

// Pair is a 2D lattice point, the image of a Point under one of the three
// matrix projections.
type Pair struct {
	X, Y int
}

// Set is a finite set of lattice points.
type Set struct {
	points map[Point]struct{}
}

// NewSet returns an empty point set.
func NewSet() *Set { return &Set{points: make(map[Point]struct{})} }

// Add inserts p into the set.
func (s *Set) Add(p Point) { s.points[p] = struct{}{} }

// Contains reports whether p is in the set.
func (s *Set) Contains(p Point) bool {
	_, ok := s.points[p]
	return ok
}

// Len returns |V|, the number of points (scalar multiplications).
func (s *Set) Len() int { return len(s.points) }

// Points returns the points in unspecified order.
func (s *Set) Points() []Point {
	out := make([]Point, 0, len(s.points))
	for p := range s.points {
		out = append(out, p)
	}
	return out
}

// ProjectionA returns φ_A(V) = {(i1,i2) : ∃ i3, (i1,i2,i3) ∈ V}, the set of
// elements of A the computation requires.
func (s *Set) ProjectionA() map[Pair]struct{} {
	out := make(map[Pair]struct{})
	for p := range s.points {
		out[Pair{p.I1, p.I2}] = struct{}{}
	}
	return out
}

// ProjectionB returns φ_B(V) = {(i2,i3) : ∃ i1, (i1,i2,i3) ∈ V}.
func (s *Set) ProjectionB() map[Pair]struct{} {
	out := make(map[Pair]struct{})
	for p := range s.points {
		out[Pair{p.I2, p.I3}] = struct{}{}
	}
	return out
}

// ProjectionC returns φ_C(V) = {(i1,i3) : ∃ i2, (i1,i2,i3) ∈ V}.
func (s *Set) ProjectionC() map[Pair]struct{} {
	out := make(map[Pair]struct{})
	for p := range s.points {
		out[Pair{p.I1, p.I3}] = struct{}{}
	}
	return out
}

// Projections returns the three projection sizes (|φ_A|, |φ_B|, |φ_C|).
func (s *Set) Projections() (a, b, c int) {
	return len(s.ProjectionA()), len(s.ProjectionB()), len(s.ProjectionC())
}

// ProjectionSum returns |φ_A(V)| + |φ_B(V)| + |φ_C(V)|, the total data
// footprint of the computation V — the quantity Theorem 3 lower-bounds.
func (s *Set) ProjectionSum() int {
	a, b, c := s.Projections()
	return a + b + c
}

// LoomisWhitneyHolds checks the Loomis-Whitney inequality
// |V| ≤ |φ_A(V)|·|φ_B(V)|·|φ_C(V)| on this set. It always returns true for
// correct projection logic; it exists so property tests can exercise the
// inequality on random sets and so experiments can report the slack.
func (s *Set) LoomisWhitneyHolds() bool {
	a, b, c := s.Projections()
	return int64(s.Len()) <= int64(a)*int64(b)*int64(c)
}

// LoomisWhitneySlack returns |φ_A|·|φ_B|·|φ_C| − |V| (≥ 0 when the
// inequality holds). A slack of zero means V is a combinatorial brick.
func (s *Set) LoomisWhitneySlack() int64 {
	a, b, c := s.Projections()
	return int64(a)*int64(b)*int64(c) - int64(s.Len())
}

// Brick returns the axis-aligned box of points with I1 ∈ [lo1, hi1),
// I2 ∈ [lo2, hi2), I3 ∈ [lo3, hi3) — the shape Algorithm 1 assigns to each
// processor, for which Loomis-Whitney holds with equality.
func Brick(lo1, hi1, lo2, hi2, lo3, hi3 int) *Set {
	if hi1 < lo1 || hi2 < lo2 || hi3 < lo3 {
		panic(fmt.Sprintf("lattice: inverted brick [%d,%d)x[%d,%d)x[%d,%d)", lo1, hi1, lo2, hi2, lo3, hi3))
	}
	s := NewSet()
	for i1 := lo1; i1 < hi1; i1++ {
		for i2 := lo2; i2 < hi2; i2++ {
			for i3 := lo3; i3 < hi3; i3++ {
				s.Add(Point{i1, i2, i3})
			}
		}
	}
	return s
}

// FullIterationSpace returns the complete n1×n2×n3 iteration space of
// multiplying an n1×n2 matrix by an n2×n3 matrix.
func FullIterationSpace(n1, n2, n3 int) *Set { return Brick(0, n1, 0, n2, 0, n3) }

// RandomSubset returns a pseudo-random subset of the n1×n2×n3 iteration
// space in which each point appears independently with probability prob,
// deterministically derived from seed.
func RandomSubset(n1, n2, n3 int, prob float64, seed uint64) *Set {
	rng := splitMix64{state: seed}
	s := NewSet()
	for i1 := 0; i1 < n1; i1++ {
		for i2 := 0; i2 < n2; i2++ {
			for i3 := 0; i3 < n3; i3++ {
				if rng.float64() < prob {
					s.Add(Point{i1, i2, i3})
				}
			}
		}
	}
	return s
}

// splitMix64 mirrors the matrix package's deterministic PRNG; duplicated
// locally to keep lattice dependency-free.
type splitMix64 struct{ state uint64 }

func (s *splitMix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}
