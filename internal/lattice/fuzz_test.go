package lattice

import (
	"testing"

	"repro/internal/core"
)

// FuzzPartitionRespectsBound fuzzes random work partitions of small
// iteration spaces and checks the empirical Theorem 3 inequality: any
// 1/P-loaded processor's projection sum is at least the Lemma 2 optimum,
// and the Loomis-Whitney / Lemma 1 invariants hold for every part.
// (Runs its seed corpus under plain `go test`; use `go test -fuzz` to
// explore.)
func FuzzPartitionRespectsBound(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(2), uint8(3), uint64(1))
	f.Add(uint8(8), uint8(6), uint8(4), uint8(5), uint64(7))
	f.Add(uint8(2), uint8(2), uint8(2), uint8(8), uint64(42))
	f.Fuzz(func(t *testing.T, n1Raw, n2Raw, n3Raw, pRaw uint8, seed uint64) {
		n1 := int(n1Raw%8) + 1
		n2 := int(n2Raw%8) + 1
		n3 := int(n3Raw%8) + 1
		p := int(pRaw%8) + 1
		pt := RandomPartition(n1, n2, n3, p, seed)
		if err := pt.Validate(); err != nil {
			t.Fatal(err)
		}
		if err := pt.CheckLowerBoundInvariants(); err != nil {
			t.Fatal(err)
		}
		sum, loaded := pt.MaxLoadedProjectionSum()
		if !loaded {
			return
		}
		if d := core.D(core.NewDims(n1, n2, n3), p); float64(sum) < d-1e-9 {
			t.Fatalf("partition of %dx%dx%d on %d procs: projection sum %d below D = %v",
				n1, n2, n3, p, sum, d)
		}
	})
}

// FuzzBrickProjections fuzzes brick shapes against the exact projection
// formulas.
func FuzzBrickProjections(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4))
	f.Add(uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, aRaw, bRaw, cRaw uint8) {
		a := int(aRaw%9) + 1
		b := int(bRaw%9) + 1
		c := int(cRaw%9) + 1
		br := Brick(0, a, 0, b, 0, c)
		pa, pb, pc := br.Projections()
		if pa != a*b || pb != b*c || pc != a*c {
			t.Fatalf("brick %dx%dx%d projections %d %d %d", a, b, c, pa, pb, pc)
		}
		if br.Len() != a*b*c || !br.LoomisWhitneyHolds() {
			t.Fatal("brick size or LW wrong")
		}
	})
}
