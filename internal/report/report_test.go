package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("longer-name", "23456")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "longer-name") {
		t.Fatalf("table output missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	// Columns aligned: both data rows have the value column at the same
	// byte offset.
	off1 := strings.Index(lines[3], "1")
	off2 := strings.Index(lines[4], "23456")
	if off1 != off2 {
		t.Fatalf("columns misaligned: %d vs %d\n%s", off1, off2, s)
	}
}

func TestTableRowArityPanics(t *testing.T) {
	tb := NewTable("", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong arity")
		}
	}()
	tb.AddRow("only-one")
}

func TestCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `quote"inside`)
	csv := tb.CSV()
	want := "a,b\n\"x,y\",\"quote\"\"inside\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestNum(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.NaN(), "-"},
		{3, "3"},
		{-12, "-12"},
		{2.5, "2.5"},
		{0, "0"},
		{1e9, "1.000e+09"},
		{0.6299605249, "0.63"},
	}
	for _, c := range cases {
		if got := Num(c.in); got != c.want {
			t.Errorf("Num(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestChartRenders(t *testing.T) {
	ch := Chart{
		Title:  "bound vs P",
		Width:  40,
		Height: 10,
		LogX:   true,
		LogY:   true,
		Series: []Series{
			{Name: "theorem3", X: []float64{1, 10, 100}, Y: []float64{1000, 100, 10}},
			{Name: "prior", X: []float64{1, 10, 100}, Y: []float64{500, 50, 5}},
		},
	}
	s := ch.String()
	if !strings.Contains(s, "theorem3") || !strings.Contains(s, "prior") {
		t.Fatalf("legend missing:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Fatalf("glyphs missing:\n%s", s)
	}
}

func TestChartDegenerate(t *testing.T) {
	// Single point, zero ranges: must not panic or divide by zero.
	ch := Chart{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{7}}}}
	if s := ch.String(); !strings.Contains(s, "pt") {
		t.Fatalf("degenerate chart broken:\n%s", s)
	}
}
