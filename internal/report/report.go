// Package report renders the experiment outputs: fixed-width ASCII tables
// (matching the layout of the paper's Table 1), CSV emission for external
// plotting, and simple ASCII line charts used to visualize the bound curves
// and sweeps in terminal output.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it must have exactly one cell per header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("report: row with %d cells for %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with padded columns and a rule under the header.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoting cells containing
// commas or quotes), headers first.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Num formats a float compactly: integers without decimals, large values in
// scientific notation, NaN as "-" (matching the paper's empty Table 1
// cells).
func Num(v float64) string {
	// Snap values within a few ulps of an integer (products of exact
	// integer formulas computed through irrational intermediates).
	if r := math.Round(v); r != 0 && math.Abs(v-r) < 1e-9*math.Abs(r) {
		v = r
	}
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case math.Abs(v) >= 1e7 || (math.Abs(v) < 1e-3 && v != 0):
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Series is one line of an ASCII chart.
type Series struct {
	Name string
	X, Y []float64
}

// Chart renders series as a log-x ASCII line chart of the given size.
// It is intentionally minimal: experiments use it to show the shape of the
// bound curves (three regimes, crossovers) directly in terminal output.
type Chart struct {
	Title         string
	Width, Height int
	LogX, LogY    bool
	Series        []Series
}

// String renders the chart with one glyph per series and a legend.
func (c *Chart) String() string {
	if c.Width <= 0 {
		c.Width = 72
	}
	if c.Height <= 0 {
		c.Height = 20
	}
	glyphs := "*o+x#@%&"
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log(math.Max(v, 1e-300))
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log(math.Max(v, 1e-300))
		}
		return v
	}
	for _, s := range c.Series {
		for i := range s.X {
			xmin = math.Min(xmin, tx(s.X[i]))
			xmax = math.Max(xmax, tx(s.X[i]))
			ymin = math.Min(ymin, ty(s.Y[i]))
			ymax = math.Max(ymax, ty(s.Y[i]))
		}
	}
	if !(xmax > xmin) {
		xmax = xmin + 1
	}
	if !(ymax > ymin) {
		ymax = ymin + 1
	}
	cells := make([][]byte, c.Height)
	for i := range cells {
		cells[i] = []byte(strings.Repeat(" ", c.Width))
	}
	for si, s := range c.Series {
		glyph := glyphs[si%len(glyphs)]
		for i := range s.X {
			px := int((tx(s.X[i]) - xmin) / (xmax - xmin) * float64(c.Width-1))
			py := int((ty(s.Y[i]) - ymin) / (ymax - ymin) * float64(c.Height-1))
			row := c.Height - 1 - py
			cells[row][px] = glyph
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	for i, row := range cells {
		label := "          "
		if i == 0 {
			label = fmt.Sprintf("%9.3g ", unTx(ymax, c.LogY))
		} else if i == c.Height-1 {
			label = fmt.Sprintf("%9.3g ", unTx(ymin, c.LogY))
		}
		b.WriteString(label + "|" + string(row) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", c.Width) + "\n")
	b.WriteString(fmt.Sprintf("%10s %-10.4g%*s%10.4g\n", "", unTx(xmin, c.LogX), c.Width-20, "", unTx(xmax, c.LogX)))
	for si, s := range c.Series {
		b.WriteString(fmt.Sprintf("  %c = %s\n", glyphs[si%len(glyphs)], s.Name))
	}
	return b.String()
}

func unTx(v float64, log bool) float64 {
	if log {
		return math.Exp(v)
	}
	return v
}
