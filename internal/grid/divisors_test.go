package grid

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
)

// trialDivisionTriples is the reference enumerator the factorized helper
// replaced: two nested trial-division loops over 1..p. Kept here as the
// oracle for equivalence (including visit order) and as the benchmark
// baseline.
func trialDivisionTriples(p int, visit func(Grid)) {
	for p1 := 1; p1 <= p; p1++ {
		if p%p1 != 0 {
			continue
		}
		rest := p / p1
		for p2 := 1; p2 <= rest; p2++ {
			if rest%p2 != 0 {
				continue
			}
			visit(Grid{p1, p2, rest / p2})
		}
	}
}

func TestDivisorsOf(t *testing.T) {
	for _, n := range []int{1, 2, 12, 97, 360, 1024, 30030} {
		var want []int
		for d := 1; d <= n; d++ {
			if n%d == 0 {
				want = append(want, d)
			}
		}
		got := divisorsOf(n)
		if len(got) != len(want) {
			t.Fatalf("divisorsOf(%d) has %d divisors, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("divisorsOf(%d)[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
	}
}

// TestForEachTripleMatchesTrialDivision checks both the set of triples and
// the visit order: Optimal's deterministic tie-breaking depends on
// first-seen order, so the factorized enumerator must be a drop-in.
func TestForEachTripleMatchesTrialDivision(t *testing.T) {
	for _, p := range []int{1, 2, 7, 12, 64, 97, 360, 1001, 1024} {
		var want, got []Grid
		trialDivisionTriples(p, func(g Grid) { want = append(want, g) })
		forEachTriple(p, func(g Grid) { got = append(got, g) })
		if len(got) != len(want) {
			t.Fatalf("P=%d: %d triples, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("P=%d: triple %d is %v, want %v (order must match)", p, i, got[i], want[i])
			}
		}
	}
}

// TestOptimalMatchesTrialDivisionSearch re-runs the full searches with the
// trial-division enumerator and demands identical winners, constraints and
// all, across square and skewed shapes and awkward processor counts.
func TestOptimalMatchesTrialDivisionSearch(t *testing.T) {
	dims := []core.Dims{
		core.NewDims(64, 64, 64),
		core.NewDims(4096, 64, 64),
		core.NewDims(1000, 100, 10),
	}
	for _, d := range dims {
		for _, p := range []int{1, 6, 13, 60, 97, 128, 360, 1001} {
			want := optimalRef(d, p)
			if got := Optimal(d, p); got != want {
				t.Errorf("Optimal(%v, %d) = %v, reference %v", d, p, got, want)
			}
			for _, mem := range []float64{0, core.MinLocalMemory(d, p) * 1.5, math.Inf(1)} {
				wantG, wantOK := optimalUnderMemoryRef(d, p, mem)
				gotG, gotOK := OptimalUnderMemory(d, p, mem)
				if gotG != wantG || gotOK != wantOK {
					t.Errorf("OptimalUnderMemory(%v, %d, %g) = %v,%v, reference %v,%v",
						d, p, mem, gotG, gotOK, wantG, wantOK)
				}
			}
		}
	}
}

// optimalRef mirrors Optimal's selection logic over the trial-division
// enumerator.
func optimalRef(d core.Dims, p int) Grid {
	best := Grid{p, 1, 1}
	bestCost := math.Inf(1)
	bestDivides := false
	trialDivisionTriples(p, func(g Grid) {
		cost := CommCost(d, g)
		div := Divides(d, g)
		better := cost < bestCost-1e-9
		if !better && math.Abs(cost-bestCost) <= 1e-9 && div && !bestDivides {
			better = true
		}
		if better {
			best, bestCost, bestDivides = g, cost, div
		}
	})
	return best
}

func optimalUnderMemoryRef(d core.Dims, p int, mem float64) (Grid, bool) {
	var best Grid
	bestCost := math.Inf(1)
	found := false
	trialDivisionTriples(p, func(g Grid) {
		if MemoryCost(d, g) > mem {
			return
		}
		if cost := CommCost(d, g); cost < bestCost-1e-9 {
			best, bestCost, found = g, cost, true
		}
	})
	return best, found
}

// BenchmarkOptimal compares the factorized enumeration against the
// trial-division loops it replaced. Prime-rich P make the gap stark: a
// prime P has two divisors, but trial division still scans all P
// candidates for p1 and up to P for p2.
func BenchmarkOptimal(b *testing.B) {
	d := core.NewDims(4096, 4096, 4096)
	for _, p := range []int{30030, 65536, 99991} {
		b.Run(fmt.Sprintf("Factorized/P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Optimal(d, p)
			}
		})
		b.Run(fmt.Sprintf("TrialDivision/P=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				optimalRef(d, p)
			}
		})
	}
}
