// Package grid implements the 3D logical processor grids of the paper's §5:
// coordinates and rank numbering on a p1×p2×p3 grid aligned with the matmul
// iteration space, the fibers along which Algorithm 1's collectives run,
// the eq. (3) communication-cost predictor, and the §5.2 optimal grid
// selection (both the paper's analytic construction and an exhaustive
// search over divisor triples for dimensions the analytic grid does not
// divide).
package grid

import (
	"fmt"

	"repro/internal/core"
)

// Grid is a p1×p2×p3 logical processor grid. P1 partitions n1 (rows of A
// and C), P2 partitions n2 (the contracted dimension), and P3 partitions n3
// (columns of B and C).
type Grid struct {
	P1, P2, P3 int
}

// Size returns the number of processors p1·p2·p3.
func (g Grid) Size() int { return g.P1 * g.P2 * g.P3 }

// Validate reports an error if any grid dimension is non-positive.
func (g Grid) Validate() error {
	if g.P1 <= 0 || g.P2 <= 0 || g.P3 <= 0 {
		return fmt.Errorf("grid: dimensions must be positive, got %v: %w", g, core.ErrGridMismatch)
	}
	return nil
}

// String renders the grid as "p1xp2xp3".
func (g Grid) String() string { return fmt.Sprintf("%dx%dx%d", g.P1, g.P2, g.P3) }

// Rank returns the linear rank of coordinates (i1, i2, i3), with i3 varying
// fastest.
func (g Grid) Rank(i1, i2, i3 int) int {
	if i1 < 0 || i1 >= g.P1 || i2 < 0 || i2 >= g.P2 || i3 < 0 || i3 >= g.P3 {
		panic(fmt.Sprintf("grid: coords (%d,%d,%d) out of %v", i1, i2, i3, g))
	}
	return (i1*g.P2+i2)*g.P3 + i3
}

// Coords inverts Rank.
func (g Grid) Coords(rank int) (i1, i2, i3 int) {
	if rank < 0 || rank >= g.Size() {
		panic(fmt.Sprintf("grid: rank %d out of %v", rank, g))
	}
	i3 = rank % g.P3
	rank /= g.P3
	i2 = rank % g.P2
	i1 = rank / g.P2
	return
}

// Axis identifies a grid dimension.
type Axis int

const (
	// Axis1 varies i1 (the n1 / rows-of-A dimension).
	Axis1 Axis = iota
	// Axis2 varies i2 (the contracted n2 dimension).
	Axis2
	// Axis3 varies i3 (the n3 / cols-of-B dimension).
	Axis3
)

// String names the axis.
func (a Axis) String() string { return [...]string{"axis1", "axis2", "axis3"}[a] }

// Fiber returns the ranks obtained by fixing the other two coordinates of
// rank and varying the given axis, in increasing coordinate order. These
// are the communicator groups of Algorithm 1: the A All-Gather runs on the
// Axis3 fiber, the B All-Gather on the Axis1 fiber, and the C
// Reduce-Scatter on the Axis2 fiber.
func (g Grid) Fiber(rank int, axis Axis) []int {
	return g.FiberInto(make([]int, g.FiberLen(axis)), rank, axis)
}

// FiberLen returns the number of ranks in a fiber along the axis.
func (g Grid) FiberLen(axis Axis) int {
	switch axis {
	case Axis1:
		return g.P1
	case Axis2:
		return g.P2
	case Axis3:
		return g.P3
	}
	panic(fmt.Sprintf("grid: unknown axis %d", axis))
}

// FiberInto is Fiber writing into dst, which must hold exactly
// FiberLen(axis) entries; it returns dst. The allocation-free variant for
// callers that recycle scratch.
func (g Grid) FiberInto(dst []int, rank int, axis Axis) []int {
	if len(dst) != g.FiberLen(axis) {
		panic(fmt.Sprintf("grid: FiberInto got %d entries for %v of %v", len(dst), axis, g))
	}
	i1, i2, i3 := g.Coords(rank)
	switch axis {
	case Axis1:
		for v := 0; v < g.P1; v++ {
			dst[v] = g.Rank(v, i2, i3)
		}
	case Axis2:
		for v := 0; v < g.P2; v++ {
			dst[v] = g.Rank(i1, v, i3)
		}
	case Axis3:
		for v := 0; v < g.P3; v++ {
			dst[v] = g.Rank(i1, i2, v)
		}
	}
	return dst
}

// CommCost evaluates eq. (3) of the paper: the per-processor communication
// volume of Algorithm 1 on this grid,
//
//	n1n2/(p1p2) + n2n3/(p2p3) + n1n3/(p1p3) − (n1n2 + n2n3 + n1n3)/P.
func CommCost(d core.Dims, g Grid) float64 {
	p1, p2, p3 := float64(g.P1), float64(g.P2), float64(g.P3)
	p := p1 * p2 * p3
	return d.SizeA()/(p1*p2) + d.SizeB()/(p2*p3) + d.SizeC()/(p1*p3) - d.InputOutputWords()/p
}

// MemoryCost returns the per-processor words Algorithm 1 holds on this
// grid: the gathered A and B panels plus the local C contribution (the
// positive terms of eq. (3)); see §6.2.
func MemoryCost(d core.Dims, g Grid) float64 {
	p1, p2, p3 := float64(g.P1), float64(g.P2), float64(g.P3)
	return d.SizeA()/(p1*p2) + d.SizeB()/(p2*p3) + d.SizeC()/(p1*p3)
}

// Divides reports whether the grid dimensions divide the matrix dimensions
// exactly — the assumption under which §5.2 proves exact attainment.
func Divides(d core.Dims, g Grid) bool {
	return d.N1%g.P1 == 0 && d.N2%g.P2 == 0 && d.N3%g.P3 == 0
}
