package grid

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
)

// Analytic returns the real-valued optimal grid of §5.2 in the original
// dimension order (not sorted): with m ≥ n ≥ k the sorted dims and p, q, r
// the grid dims assigned to them,
//
//	Case 1 (P ≤ m/n):         (p, q, r) = (P, 1, 1)
//	Case 2 (m/n ≤ P ≤ mn/k²):  p = (Pm/n)^{1/2}, q = (Pn/m)^{1/2}, r = 1
//	Case 3 (mn/k² ≤ P):        p = (P/mnk)^{1/3}·m, and similarly q, r.
//
// The components multiply to P exactly but are generally not integers.
func Analytic(d core.Dims, p int) (g1, g2, g3 float64) {
	m, n, k := d.Sorted()
	fm, fn, fk, fp := float64(m), float64(n), float64(k), float64(p)
	var bySize [3]float64 // grid dims for (max, median, min) matrix dims
	switch core.CaseOf(d, p) {
	case core.Case1:
		bySize = [3]float64{fp, 1, 1}
	case core.Case2:
		bySize = [3]float64{math.Sqrt(fp * fm / fn), math.Sqrt(fp * fn / fm), 1}
	default:
		c := math.Cbrt(fp / (fm * fn * fk))
		bySize = [3]float64{c * fm, c * fn, c * fk}
	}
	perm := sortPerm(d)
	var out [3]float64
	for sortedIdx, dimIdx := range perm {
		out[dimIdx] = bySize[sortedIdx]
	}
	return out[0], out[1], out[2]
}

// sortPerm returns perm such that perm[0] is the index (0,1,2 for n1,n2,n3)
// of the maximum dimension, perm[1] of the median, perm[2] of the minimum,
// breaking ties by original index for determinism.
func sortPerm(d core.Dims) [3]int {
	dims := [3]int{d.N1, d.N2, d.N3}
	idx := []int{0, 1, 2}
	sort.SliceStable(idx, func(a, b int) bool { return dims[idx[a]] > dims[idx[b]] })
	return [3]int{idx[0], idx[1], idx[2]}
}

// Optimal returns the integer grid with p1·p2·p3 = P minimizing the eq. (3)
// communication cost, found by exhaustive search over divisor triples. Ties
// are broken toward grids that divide the matrix dimensions, then
// lexicographically, so the result is deterministic. This is the grid a
// practical implementation would use when the analytic §5.2 grid is not
// integral.
func Optimal(d core.Dims, p int) Grid {
	if p <= 0 {
		panic(fmt.Sprintf("grid: Optimal with P=%d", p))
	}
	best := Grid{p, 1, 1}
	bestCost := math.Inf(1)
	bestDivides := false
	forEachTriple(p, func(g Grid) {
		cost := CommCost(d, g)
		div := Divides(d, g)
		better := cost < bestCost-1e-9
		if !better && math.Abs(cost-bestCost) <= 1e-9 {
			// Tie: prefer dividing grids, then lexicographic order.
			if div && !bestDivides {
				better = true
			}
		}
		if better {
			best, bestCost, bestDivides = g, cost, div
		}
	})
	return best
}

// OptimalUnderMemory returns the eq. (3)-cheapest integer grid whose
// per-processor footprint (MemoryCost: gathered panels plus the local C
// contribution) fits in mem words, or false when no grid of P processors
// fits. As mem shrinks below Algorithm 1's unconstrained footprint D, the
// best feasible grid flattens from 3D toward 2D and 1D and the cost rises —
// the §6.2 memory/communication trade-off made concrete. (Below
// (mn+mk+nk)/P nothing can fit, matching core.MinLocalMemory.)
func OptimalUnderMemory(d core.Dims, p int, mem float64) (Grid, bool) {
	if p <= 0 {
		panic(fmt.Sprintf("grid: OptimalUnderMemory with P=%d", p))
	}
	var best Grid
	bestCost := math.Inf(1)
	found := false
	forEachTriple(p, func(g Grid) {
		if MemoryCost(d, g) > mem {
			return
		}
		if cost := CommCost(d, g); cost < bestCost-1e-9 {
			best, bestCost, found = g, cost, true
		}
	})
	return best, found
}

// CaseGrid builds the §5.2 grid with integer rounding of the analytic
// construction and verifies it is exact: it returns an error unless the
// analytic grid dimensions are integers that divide the corresponding
// matrix dimensions. Use it in tightness experiments, where exact
// attainment of the bound is asserted; use Optimal elsewhere.
func CaseGrid(d core.Dims, p int) (Grid, error) {
	g1, g2, g3 := Analytic(d, p)
	round := func(x float64) (int, bool) {
		r := math.Round(x)
		return int(r), math.Abs(x-r) < 1e-6
	}
	i1, ok1 := round(g1)
	i2, ok2 := round(g2)
	i3, ok3 := round(g3)
	if !ok1 || !ok2 || !ok3 {
		return Grid{}, fmt.Errorf("grid: analytic grid (%.3f, %.3f, %.3f) for %v P=%d is not integral: %w", g1, g2, g3, d, p, core.ErrGridMismatch)
	}
	g := Grid{i1, i2, i3}
	if g.Size() != p {
		return Grid{}, fmt.Errorf("grid: rounded grid %v has size %d, want %d: %w", g, g.Size(), p, core.ErrGridMismatch)
	}
	if !Divides(d, g) {
		return Grid{}, fmt.Errorf("grid: %v does not divide %v: %w", g, d, core.ErrGridMismatch)
	}
	return g, nil
}
