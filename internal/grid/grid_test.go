package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestRankCoordsRoundTrip(t *testing.T) {
	g := Grid{3, 4, 5}
	seen := make(map[int]bool)
	for i1 := 0; i1 < 3; i1++ {
		for i2 := 0; i2 < 4; i2++ {
			for i3 := 0; i3 < 5; i3++ {
				r := g.Rank(i1, i2, i3)
				if r < 0 || r >= g.Size() || seen[r] {
					t.Fatalf("rank %d invalid or duplicate", r)
				}
				seen[r] = true
				j1, j2, j3 := g.Coords(r)
				if j1 != i1 || j2 != i2 || j3 != i3 {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", i1, i2, i3, r, j1, j2, j3)
				}
			}
		}
	}
	if len(seen) != 60 {
		t.Fatalf("covered %d ranks", len(seen))
	}
}

func TestGridValidateAndString(t *testing.T) {
	if (Grid{2, 2, 2}).Validate() != nil {
		t.Fatal("valid grid rejected")
	}
	if (Grid{0, 1, 1}).Validate() == nil {
		t.Fatal("invalid grid accepted")
	}
	if (Grid{2, 3, 4}).String() != "2x3x4" {
		t.Fatal("String wrong")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	g := Grid{2, 2, 2}
	for _, fn := range []func(){
		func() { g.Rank(2, 0, 0) },
		func() { g.Coords(8) },
		func() { g.Coords(-1) },
		func() { g.Fiber(0, Axis(7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFibers(t *testing.T) {
	g := Grid{2, 3, 4}
	r := g.Rank(1, 2, 3)
	f1 := g.Fiber(r, Axis1)
	if len(f1) != 2 || f1[0] != g.Rank(0, 2, 3) || f1[1] != r {
		t.Fatalf("Axis1 fiber = %v", f1)
	}
	f2 := g.Fiber(r, Axis2)
	if len(f2) != 3 || f2[0] != g.Rank(1, 0, 3) || f2[2] != r {
		t.Fatalf("Axis2 fiber = %v", f2)
	}
	f3 := g.Fiber(r, Axis3)
	if len(f3) != 4 || f3[0] != g.Rank(1, 2, 0) || f3[3] != r {
		t.Fatalf("Axis3 fiber = %v", f3)
	}
	// Every rank in a fiber computes the same fiber.
	for _, other := range f2 {
		got := g.Fiber(other, Axis2)
		for i := range got {
			if got[i] != f2[i] {
				t.Fatalf("fiber not shared: %v vs %v", got, f2)
			}
		}
	}
	if Axis1.String() != "axis1" || Axis2.String() != "axis2" || Axis3.String() != "axis3" {
		t.Fatal("axis names")
	}
}

func TestCommCostEquation3(t *testing.T) {
	d := core.NewDims(9600, 2400, 600)
	// 1D grid 3×1×1: cost = (mn+mk)/3 + nk − io/3 = (1−1/3)nk... compute
	// directly from eq. (3).
	g := Grid{3, 1, 1}
	want := 9600.0*2400/3 + 2400.0*600/1 + 9600.0*600/3 - (9600.0*2400+2400*600+9600*600)/3
	if got := CommCost(d, g); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CommCost = %v, want %v", got, want)
	}
	// Grid of 1 processor: zero cost.
	if got := CommCost(d, Grid{1, 1, 1}); got != 0 {
		t.Fatalf("single-processor cost = %v", got)
	}
}

func TestMemoryCostMatchesD(t *testing.T) {
	// With the optimal case grid, MemoryCost equals the paper's D (§6.2).
	d := core.NewDims(9600, 2400, 600)
	for _, p := range []int{3, 36, 512} {
		g, err := CaseGrid(d, p)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := MemoryCost(d, g), core.D(d, p); math.Abs(got-want) > 1e-6*want {
			t.Fatalf("P=%d MemoryCost %v, want D = %v", p, got, want)
		}
	}
}

// TestFigure2Grids reproduces the paper's Figure 2: for 9600×2400×600 the
// optimal grids at P = 3, 36, 512 are 3×1×1, 12×3×1, and 32×8×2.
func TestFigure2Grids(t *testing.T) {
	d := core.NewDims(9600, 2400, 600)
	cases := []struct {
		p    int
		want Grid
	}{
		{3, Grid{3, 1, 1}},
		{36, Grid{12, 3, 1}},
		{512, Grid{32, 8, 2}},
	}
	for _, c := range cases {
		g, err := CaseGrid(d, c.p)
		if err != nil {
			t.Fatalf("P=%d: %v", c.p, err)
		}
		if g != c.want {
			t.Errorf("CaseGrid(P=%d) = %v, want %v", c.p, g, c.want)
		}
		if opt := Optimal(d, c.p); CommCost(d, opt) > CommCost(d, g)+1e-9 {
			t.Errorf("Optimal(P=%d) = %v costs more than case grid %v", c.p, opt, g)
		}
	}
}

// TestCaseGridAttainsLowerBound is §5.2 at the formula level: the case
// grid's eq. (3) cost equals Theorem 3's lower bound.
func TestCaseGridAttainsLowerBound(t *testing.T) {
	d := core.NewDims(9600, 2400, 600)
	for _, p := range []int{1, 2, 3, 4, 8, 16, 36, 64, 256, 512, 4096} {
		g, err := CaseGrid(d, p)
		if err != nil {
			continue // analytic grid not integral for this P; fine
		}
		got := CommCost(d, g)
		want := core.LowerBound(d, p)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("P=%d grid %v: cost %v, bound %v", p, g, got, want)
		}
	}
}

func TestAnalyticProductIsP(t *testing.T) {
	f := func(aRaw, bRaw, cRaw, pRaw uint8) bool {
		d := core.NewDims(int(aRaw%60)+1, int(bRaw%60)+1, int(cRaw%60)+1)
		p := int(pRaw) + 1
		g1, g2, g3 := Analytic(d, p)
		return math.Abs(g1*g2*g3-float64(p)) < 1e-6*float64(p) &&
			g1 >= 1-1e-9 && g2 >= 1-1e-9 && g3 >= 1-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAnalyticAlignsWithDims(t *testing.T) {
	// The largest grid dimension must be assigned to the largest matrix
	// dimension, regardless of input order.
	for _, d := range []core.Dims{core.NewDims(9600, 2400, 600), core.NewDims(600, 2400, 9600), core.NewDims(2400, 600, 9600)} {
		g1, g2, g3 := Analytic(d, 512)
		got := map[int]float64{d.N1: g1, d.N2: g2, d.N3: g3}
		if got[9600] < got[2400] || got[2400] < got[600] {
			t.Errorf("dims %v: grid (%v,%v,%v) misaligned", d, g1, g2, g3)
		}
	}
}

func TestOptimalNeverWorseThanCaseGrid(t *testing.T) {
	shapes := []core.Dims{core.NewDims(9600, 2400, 600), core.NewDims(64, 64, 64), core.NewDims(128, 32, 8), core.NewDims(100, 10, 1)}
	for _, d := range shapes {
		for _, p := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64} {
			opt := Optimal(d, p)
			if opt.Size() != p {
				t.Fatalf("Optimal(%v, %d) = %v has wrong size", d, p, opt)
			}
			if cg, err := CaseGrid(d, p); err == nil {
				if CommCost(d, opt) > CommCost(d, cg)+1e-9 {
					t.Errorf("dims %v P=%d: Optimal %v worse than case grid %v", d, p, opt, cg)
				}
			}
			// And never better than the lower bound.
			if CommCost(d, opt) < core.LowerBound(d, p)-1e-6 {
				t.Errorf("dims %v P=%d: grid %v beats the lower bound", d, p, opt)
			}
		}
	}
}

func TestOptimalSquare(t *testing.T) {
	// Square matmul on a cube number of processors: cubic grid.
	g := Optimal(core.Square(64), 64)
	if g != (Grid{4, 4, 4}) {
		t.Fatalf("Optimal cube grid = %v", g)
	}
}

func TestCaseGridErrors(t *testing.T) {
	// P = 7 on the paper dims: analytic Case 2 grid is irrational.
	if _, err := CaseGrid(core.NewDims(9600, 2400, 600), 7); err == nil {
		t.Fatal("expected non-integral analytic grid error")
	}
	// Integral grid but does not divide dims.
	if _, err := CaseGrid(core.NewDims(5, 5, 5), 8); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestDivides(t *testing.T) {
	d := core.NewDims(12, 6, 4)
	if !Divides(d, Grid{3, 2, 4}) || Divides(d, Grid{5, 1, 1}) {
		t.Fatal("Divides wrong")
	}
}

// TestOptimalUnderMemory documents a consequence of Lemma 2: eq.(3)'s
// footprint is the optimization objective, so the communication-optimal
// grid is also the memory-cheapest one. With mem ≥ D the constrained
// search returns the unconstrained optimum; below D nothing fits.
func TestOptimalUnderMemory(t *testing.T) {
	d := core.NewDims(768, 192, 48)
	p := 512
	dOpt := core.D(d, p)
	g, ok := OptimalUnderMemory(d, p, dOpt+1)
	if !ok || g != Optimal(d, p) {
		t.Fatalf("ample memory: got %v ok=%v", g, ok)
	}
	if _, ok := OptimalUnderMemory(d, p, dOpt*0.99); ok {
		t.Fatal("no grid should fit below D")
	}
	// Generous memory changes nothing.
	if g2, ok := OptimalUnderMemory(d, p, 1e12); !ok || g2 != g {
		t.Fatal("generous memory should return the optimum")
	}
}

// TestMemoryCostMinimizedAtOptimalGrid: every other grid has footprint ≥ D.
func TestMemoryCostMinimizedAtOptimalGrid(t *testing.T) {
	d := core.NewDims(96, 24, 6)
	for _, p := range []int{4, 16, 36, 64} {
		dOpt := core.D(d, p)
		for p1 := 1; p1 <= p; p1++ {
			if p%p1 != 0 {
				continue
			}
			for p2 := 1; p2 <= p/p1; p2++ {
				if (p/p1)%p2 != 0 {
					continue
				}
				g := Grid{p1, p2, p / p1 / p2}
				if MemoryCost(d, g) < dOpt-1e-9 {
					t.Fatalf("grid %v footprint %v below D = %v", g, MemoryCost(d, g), dOpt)
				}
			}
		}
	}
}
