package grid

import (
	"fmt"
	"sort"
)

// factorize returns the prime factorization of n > 0 as parallel slices of
// primes (ascending) and exponents.
func factorize(n int) (primes, exps []int) {
	if n <= 0 {
		panic(fmt.Sprintf("grid: factorize(%d)", n))
	}
	for f := 2; f*f <= n; f++ {
		if n%f != 0 {
			continue
		}
		e := 0
		for n%f == 0 {
			n /= f
			e++
		}
		primes = append(primes, f)
		exps = append(exps, e)
	}
	if n > 1 {
		primes = append(primes, n)
		exps = append(exps, 1)
	}
	return primes, exps
}

// divisorsOf returns all divisors of n in ascending order, generated from
// the prime factorization: d(n) values instead of the n trial divisions the
// nested search loops used to spend, a large win for prime-rich P (a prime
// P has 2 divisors but cost P to scan).
func divisorsOf(n int) []int {
	primes, exps := factorize(n)
	divs := []int{1}
	for i, p := range primes {
		base := len(divs)
		pk := 1
		for e := 0; e < exps[i]; e++ {
			pk *= p
			for j := 0; j < base; j++ {
				divs = append(divs, divs[j]*pk)
			}
		}
	}
	sort.Ints(divs)
	return divs
}

// forEachTriple visits every ordered triple (p1, p2, p3) of positive
// integers with p1·p2·p3 = p, exactly once each, as Grid{p1, p2, p3}. The
// visit order — p1 ascending, then p2 ascending within each p1 — matches
// the nested trial-division loops this helper replaced, so searches that
// break cost ties by first-seen order are unchanged. Both Optimal and
// OptimalUnderMemory enumerate through here.
func forEachTriple(p int, visit func(Grid)) {
	divs := divisorsOf(p)
	for _, p1 := range divs {
		rest := p / p1
		for _, p2 := range divs {
			if p2 > rest {
				break
			}
			if rest%p2 == 0 {
				visit(Grid{p1, p2, rest / p2})
			}
		}
	}
}
