package parmm

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestPlanFacade drives the §6.2 planner through the public API on the
// pinned rectangular example: m=9600, n=2400, k=600, M=40000 words gives
// mnk/M^{3/2} = 1728 and so CrossoverP = (8/27)·1728 = 512 exactly.
func TestPlanFacade(t *testing.T) {
	req := PlanRequest{
		Dims: NewDims(9600, 2400, 600),
		Mem:  40000,
		PMin: 64, PMax: 1024, Log2: true,
	}
	sum, pts, err := Plan(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum.CrossoverP-512) > 512*1e-12 {
		t.Errorf("CrossoverP = %v, want 512", sum.CrossoverP)
	}
	// At P = 512 the two bounds tie exactly and the tie counts as
	// memory-dependent, so the first strictly memory-independent swept
	// point is the next one, P = 1024.
	if !sum.CrossoverInRange || sum.ObservedCrossoverP != 1024 {
		t.Errorf("crossover: inRange=%v observed=%d, want true/1024", sum.CrossoverInRange, sum.ObservedCrossoverP)
	}
	if len(pts) != 5 || sum.Points != 5 {
		t.Fatalf("points = %d (summary %d), want 5", len(pts), sum.Points)
	}
	for i, pt := range pts {
		if want := 64 << i; pt.P != want {
			t.Fatalf("pts[%d].P = %d, want %d", i, pt.P, want)
		}
		// Each point's bound columns agree with the scalar calculator.
		if pt.Bound != LowerBound(req.Dims, pt.P) {
			t.Errorf("P=%d: Bound = %v, want %v", pt.P, pt.Bound, LowerBound(req.Dims, pt.P))
		}
		if want := MemoryDependentLowerBound(req.Dims, pt.P, req.Mem); pt.MemBound != want {
			t.Errorf("P=%d: MemBound = %v, want %v", pt.P, pt.MemBound, want)
		}
		if pt.MemoryDependent != (pt.P <= 512) {
			t.Errorf("P=%d: MemoryDependent = %v", pt.P, pt.MemoryDependent)
		}
	}
	if lim := StrongScalingLimit(req.Dims, req.Mem); math.Abs(lim-sum.CrossoverP) > 1e-9 {
		t.Errorf("StrongScalingLimit = %v, CrossoverP = %v", lim, sum.CrossoverP)
	}

	// PlanSweep streams the identical points in order, and PlanSummarize
	// reproduces the summary without evaluating any of them.
	var streamed []PlanPoint
	sum2, err := PlanSweep(context.Background(), req, 2, func(chunk []PlanPoint) error {
		streamed = append(streamed, chunk...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum2, sum) || !reflect.DeepEqual(streamed, pts) {
		t.Error("PlanSweep diverges from Plan")
	}
	if sum3, err := PlanSummarize(req); err != nil || !reflect.DeepEqual(sum3, sum) {
		t.Errorf("PlanSummarize = %+v, %v", sum3, err)
	}
}

// TestPlanFacadeErrors pins ErrBadPlanRange in the errors.Is taxonomy.
func TestPlanFacadeErrors(t *testing.T) {
	for name, req := range map[string]PlanRequest{
		"inverted range": {Dims: NewDims(64, 64, 64), Mem: 1e6, PMin: 16, PMax: 4},
		"bad memory":     {Dims: NewDims(64, 64, 64), Mem: 0, PMin: 1, PMax: 4},
		"over budget":    {Dims: NewDims(64, 64, 64), Mem: 1e6, PMin: 1, PMax: 100, MaxPoints: 10},
	} {
		if _, _, err := Plan(context.Background(), req); !errors.Is(err, ErrBadPlanRange) {
			t.Errorf("%s: err = %v, want ErrBadPlanRange", name, err)
		}
	}
	if _, _, err := Plan(context.Background(), PlanRequest{Dims: NewDims(0, 1, 1), Mem: 1, PMin: 1, PMax: 1}); !errors.Is(err, ErrBadDims) {
		t.Errorf("bad dims: err = %v, want ErrBadDims", err)
	}
}
