package parmm

import (
	"context"

	"repro/internal/plan"
)

// --- §6.2 strong-scaling planner ---

// PlanRequest describes a strong-scaling plan: a problem shape, a per-rank
// memory budget in words, and the processor range to evaluate (linear with
// PStep, or geometric with Log2). The zero Config means BandwidthOnly, so
// points read directly in words; TopoSpec optionally prices every point on
// a concrete interconnect.
type PlanRequest = plan.Request

// PlanPoint is the plan for one processor count: the Theorem 3 regime and
// bound, the memory-dependent bound and which of the two binds, the
// cheapest grid fitting in memory (when one exists), the predicted
// Algorithm 1 time, and the derived speedup and efficiency.
type PlanPoint = plan.Point

// PlanSummary is the range-level analysis computed once per plan: the
// Theorem 3 case boundaries, the memory floor P, and the §6.2 crossover
// P = (8/27)·mnk/M^{3/2} — both the analytic value and the first swept P
// that witnesses the memory-dependent→independent switch.
type PlanSummary = plan.Summary

// Plan evaluates the whole strong-scaling plan and returns the summary and
// every point in P order. The sweep honors ctx; large ranges stream in
// bounded memory through PlanSweep instead.
func Plan(ctx context.Context, req PlanRequest) (PlanSummary, []PlanPoint, error) {
	return plan.Run(ctx, req)
}

// PlanSweep evaluates the plan in chunks of chunk points (≤ 0 selects a
// default), calling emit with each completed chunk in index order before
// the next chunk starts, so a 10⁵-point range runs in bounded memory. The
// returned summary is computed up front and is valid even when the sweep is
// cancelled mid-range; an emit error aborts the sweep with that error.
func PlanSweep(ctx context.Context, req PlanRequest, chunk int, emit func([]PlanPoint) error) (PlanSummary, error) {
	return plan.Planner{}.Sweep(ctx, req, chunk, emit)
}

// PlanSummarize validates req and returns only its range-level analysis,
// without evaluating any point — the cheap way to locate the crossover and
// the memory floor before committing to a sweep.
func PlanSummarize(req PlanRequest) (PlanSummary, error) {
	return plan.Summarize(req)
}
