package parmm_test

import (
	"errors"
	"math"
	"math/big"
	"testing"

	parmm "repro"
)

// TestProgramFacade drives the generalized bound layer through the public
// API: parse, solve, bound, and the collapse onto the matmul closed forms.
func TestProgramFacade(t *testing.T) {
	prog, err := parmm.ParseProgram("A[i,k]*B[k,j] -> C[i,j] | i=9600 k=600 j=2400")
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := parmm.ProgramSigma(prog)
	if err != nil {
		t.Fatal(err)
	}
	if sigma.Cmp(big.NewRat(3, 2)) != 0 {
		t.Fatalf("σ = %v, want 3/2", sigma)
	}
	b, err := parmm.BoundForProgram(prog, 512)
	if err != nil {
		t.Fatal(err)
	}
	d := parmm.NewDims(9600, 600, 2400)
	want := parmm.LowerBound(d, 512)
	if math.Abs(b.LowerBound-want) > 1e-9*(1+want) {
		t.Fatalf("program bound %v, closed form %v", b.LowerBound, want)
	}
	if b.FreeArrays != int(parmm.CaseOf(d, 512)) {
		t.Fatalf("FreeArrays = %d, want the Theorem 3 case %v", b.FreeArrays, parmm.CaseOf(d, 512))
	}

	if _, err := parmm.ParseProgram("not a program"); !errors.Is(err, parmm.ErrBadProgram) {
		t.Fatalf("ParseProgram garbage: %v, want ErrBadProgram", err)
	}
	if _, err := parmm.BoundForProgram(parmm.Program{}, 4); !errors.Is(err, parmm.ErrBadProgram) {
		t.Fatalf("BoundForProgram empty: %v, want ErrBadProgram", err)
	}
}

// TestProgramConstructors sanity-checks the zoo's exponents through the
// facade constructors.
func TestProgramConstructors(t *testing.T) {
	cases := []struct {
		name  string
		p     parmm.Program
		sigma *big.Rat
	}{
		{"matmul", parmm.MatMulProgram(64, 64, 64), big.NewRat(3, 2)},
		{"cuboid-4", parmm.CuboidProgram(32, 16, 16, 8), big.NewRat(4, 3)},
		{"contraction", parmm.TensorContractionProgram([]int{8, 8}, []int{8}, []int{8, 8}), big.NewRat(3, 2)},
		{"nbody", parmm.NBodyProgram(4096), big.NewRat(2, 1)},
		{"conv2d", parmm.Conv2DProgram(256, 256, 3, 3), big.NewRat(2, 1)},
	}
	for _, tc := range cases {
		sigma, err := parmm.ProgramSigma(tc.p)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sigma.Cmp(tc.sigma) != 0 {
			t.Errorf("%s: σ = %v, want %v", tc.name, sigma, tc.sigma)
		}
		b, err := parmm.BoundForProgram(tc.p, 64)
		if err != nil {
			t.Fatalf("%s: bound: %v", tc.name, err)
		}
		if b.Footprint < math.Pow(b.Volume/64, b.Exponent)*(1-1e-12) {
			t.Errorf("%s: footprint %v under the HBL floor", tc.name, b.Footprint)
		}
	}
}
