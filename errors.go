package parmm

import "repro/internal/core"

// The public error taxonomy. Every validation failure returned by this
// package wraps exactly one of these sentinels, so callers dispatch with
// errors.Is rather than matching message text:
//
//	if _, err := parmm.CaseGrid(d, p); errors.Is(err, parmm.ErrGridMismatch) {
//	    g = parmm.OptimalGrid(d, p) // fall back to the exhaustive search
//	}
//
// The parmmd HTTP service maps the same sentinels onto status codes
// (ErrBadDims, ErrBadProcessorCount, ErrBadOpts, ErrBadTopology,
// ErrBadPlanRange → 400; ErrGridMismatch, ErrUnsupportedAlg → 422).
var (
	// ErrBadDims marks invalid matrix dimensions: non-positive sizes or
	// operand shapes that do not conform.
	ErrBadDims = core.ErrBadDims

	// ErrBadProcessorCount marks a processor count an algorithm cannot
	// use: non-positive, non-square for Cannon, not a power of two for
	// CARMA, not q²c for TwoPointFiveD, and so on.
	ErrBadProcessorCount = core.ErrBadProcessorCount

	// ErrGridMismatch marks a processor grid that does not fit the run:
	// wrong total size, non-positive extents, extents exceeding (or, where
	// exactness demands, not dividing) the matrix dimensions, or an
	// analytic §5.2 grid that is not integral.
	ErrGridMismatch = core.ErrGridMismatch

	// ErrUnsupportedAlg marks a request for an algorithm this library does
	// not implement.
	ErrUnsupportedAlg = core.ErrUnsupportedAlg

	// ErrBadOpts marks invalid run options (Opts.Validate failures):
	// negative worker or layer counts, an unknown collective family, chunk
	// counts below one.
	ErrBadOpts = core.ErrBadOpts

	// ErrBadTopology marks an invalid interconnect topology: an unknown or
	// malformed spec string, a fabric whose endpoint count does not match
	// the run's processor count, or an unknown placement policy.
	ErrBadTopology = core.ErrBadTopology

	// ErrTooManyRanks marks a processor count beyond what the selected
	// execution engine supports (the goroutine engine caps P at 2^21−1;
	// the event engine, selected with WithEngine(EngineEvent), at 2^31−1).
	ErrTooManyRanks = core.ErrTooManyRanks

	// ErrBadPlanRange marks an invalid strong-scaling plan request: a
	// non-positive or infinite memory budget, an empty or inverted
	// processor range, a negative stride, a range expanding past the point
	// budget, or a fixed-size topology asked to span several P.
	ErrBadPlanRange = core.ErrBadPlanRange

	// ErrBadProgram marks an invalid HBL array program (ParseProgram or
	// BoundForProgram failures): malformed DSL text, duplicate or unknown
	// names, an index no array references, missing or oversized extents.
	ErrBadProgram = core.ErrBadProgram
)
