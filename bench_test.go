package parmm

// The benchmark harness regenerates every table and figure of the paper —
// one benchmark per artifact, per DESIGN.md's experiment index — plus
// ablation benchmarks for the design choices DESIGN.md calls out. Custom
// metrics report the quantities the paper studies (words per processor,
// ratio to Theorem 3's bound) alongside Go's time/op:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/algs"
	"repro/internal/benchrec"
	"repro/internal/caps"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/matrix"
)

// loopAllocs runs fn b.N times inside the timer and returns the mean heap
// allocations per iteration (the counter -benchmem reports), so the heavy
// benchmarks can derive a words-per-alloc metric: simulated communication
// volume moved per heap allocation, the figure of merit of the pooled
// communication hot path.
func loopAllocs(b *testing.B, fn func(i int)) float64 {
	b.Helper()
	b.ReportAllocs()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	start := ms.Mallocs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(i)
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms)
	return float64(ms.Mallocs-start) / float64(b.N)
}

// BenchmarkTable1 regenerates Table 1 (E1): the constants comparison.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := experiments.Table1()
		if a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
	b.ReportMetric(core.ThisPaper.Constant(core.Case3), "case3-constant")
	b.ReportMetric(core.ImprovementFactor(core.DemmelEtAl2013, core.Case3), "improvement-vs-demmel")
}

// BenchmarkLemma2Cases regenerates the Lemma 2 case diagram (E2) and
// reports the worst KKT certificate residual across the sweep.
func BenchmarkLemma2Cases(b *testing.B) {
	d := experiments.DefaultRectDims
	for i := 0; i < b.N; i++ {
		if a := experiments.Lemma2Cases(d); a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
	worst := 0.0
	for _, p := range []int{1, 2, 4, 5, 34, 64, 65, 256, 4096} {
		if r := core.Lemma2KKTRelativeResidual(d, p); r > worst {
			worst = r
		}
	}
	b.ReportMetric(worst, "max-kkt-residual")
}

// BenchmarkTheorem3Curves regenerates the bound-vs-P curves (E3).
func BenchmarkTheorem3Curves(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if a := experiments.BoundCurves(experiments.PaperRectDims, 1<<20); a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkAlg1 runs the collective-heavy Algorithm 1 workload of the E7
// comparison as a top-level benchmark, so `-bench Alg1` exercises the
// pooled communication hot path directly. Besides the paper metrics it
// reports words/alloc — simulated words moved per heap allocation.
func BenchmarkAlg1(b *testing.B) {
	n, p := experiments.DefaultCompareN, experiments.DefaultCompareP
	a := matrix.Random(n, n, 17)
	bm := matrix.Random(n, n, 18)
	bound := core.LowerBound(core.Square(n), p)
	var res *algs.Result
	allocs := loopAllocs(b, func(int) {
		var err error
		res, err = algs.Alg1(a, bm, p, algs.Opts{Config: machine.BandwidthOnly()})
		if err != nil {
			b.Fatal(err)
		}
	})
	b.ReportMetric(res.CommCost(), "words/proc")
	b.ReportMetric(res.CommCost()/bound, "ratio-to-bound")
	if allocs > 0 {
		b.ReportMetric(res.Stats.TotalWordsSent/allocs, "words/alloc")
	}
}

// BenchmarkFigure1 regenerates Figure 1 (E4): Algorithm 1's per-collective
// data movement on a 3×3×3 grid.
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(experiments.DefaultFig1N, 27); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 regenerates Figure 2 (E5): the optimal grids of the
// 9600×2400×600 instance, reporting the 3D-case grid-search cost ratio.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if a := experiments.Figure2(); a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
	d := experiments.PaperRectDims
	g := grid.Optimal(d, 512)
	b.ReportMetric(grid.CommCost(d, g)/core.LowerBound(d, 512), "grid-cost-over-bound")
}

// BenchmarkTightness regenerates the §5.2 tightness experiment (E6):
// simulated Algorithm 1 equals the bound in all three cases.
func BenchmarkTightness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tightness(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1.0, "measured-over-bound")
}

// BenchmarkAlgorithms regenerates the baseline comparison (E7), one
// sub-benchmark per algorithm, reporting measured words/proc and the ratio
// to the bound.
func BenchmarkAlgorithms(b *testing.B) {
	n, p := experiments.DefaultCompareN, experiments.DefaultCompareP
	d := core.Square(n)
	a := matrix.Random(n, n, 17)
	bm := matrix.Random(n, n, 18)
	bound := core.LowerBound(d, p)
	for _, e := range algs.Registry() {
		e := e
		b.Run(e.Name, func(b *testing.B) {
			var res *algs.Result
			allocs := loopAllocs(b, func(int) {
				var err error
				res, err = e.Run(a, bm, p, algs.Opts{Config: machine.BandwidthOnly()})
				if err != nil {
					b.Fatal(err)
				}
			})
			b.ReportMetric(res.CommCost(), "words/proc")
			b.ReportMetric(res.CommCost()/bound, "ratio-to-bound")
			if allocs > 0 {
				b.ReportMetric(res.Stats.TotalWordsSent/allocs, "words/alloc")
			}
		})
	}
}

// BenchmarkStrongScaling regenerates the strong-scaling sweep (E7b).
func BenchmarkStrongScaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StrongScaling(experiments.DefaultRectDims, []int{1, 4, 16, 64, 256}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLimitedMemory regenerates the §6.2 analysis (E8), reporting the
// crossover processor count.
func BenchmarkLimitedMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if a := experiments.LimitedMemory(experiments.DefaultSquareN, experiments.DefaultMemoryWords); a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
	b.ReportMetric(core.CrossoverP(core.Square(experiments.DefaultSquareN), experiments.DefaultMemoryWords), "crossover-P")
}

// --- Ablations (design choices called out in DESIGN.md) ---

// BenchmarkAblationReduceScatterVsAllToAll compares the paper's
// Reduce-Scatter step against the Agarwal 1995 All-to-All on the same grid:
// same bandwidth, different message counts.
func BenchmarkAblationReduceScatterVsAllToAll(b *testing.B) {
	n, p := 48, 64
	a := matrix.Random(n, n, 3)
	bm := matrix.Random(n, n, 4)
	for _, variant := range []struct {
		name string
		run  algs.Runner
	}{{"ReduceScatter", algs.Alg1}, {"AllToAll", algs.AllToAll3D}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var res *algs.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = variant.run(a, bm, p, algs.Opts{Config: machine.Config{Alpha: 1, Beta: 1}})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CommCost(), "words/proc")
			b.ReportMetric(float64(res.Stats.TotalMessages), "total-messages")
			b.ReportMetric(res.Stats.CriticalPath, "critical-path")
		})
	}
}

// BenchmarkAblationRingVsRecursive compares the two collective families:
// equal bandwidth, ring pays p−1 latencies vs log₂(p).
func BenchmarkAblationRingVsRecursive(b *testing.B) {
	n, p := 48, 64
	a := matrix.Random(n, n, 5)
	bm := matrix.Random(n, n, 6)
	for _, variant := range []struct {
		name string
		alg  collective.Algorithm
	}{{"Ring", collective.Ring}, {"Recursive", collective.Recursive}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			var res *algs.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = algs.Alg1(a, bm, p, algs.Opts{
					Config:     machine.Config{Alpha: 1, Beta: 1},
					Collective: variant.alg,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CommCost(), "words/proc")
			b.ReportMetric(float64(res.Stats.TotalMessages), "total-messages")
		})
	}
}

// BenchmarkAblationGridSelection compares exhaustive divisor search against
// the §5.2 analytic construction at a P where both are integral.
func BenchmarkAblationGridSelection(b *testing.B) {
	d := experiments.PaperRectDims
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid.Optimal(d, 512)
		}
	})
	b.Run("Analytic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := grid.CaseGrid(d, 512); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblation25DLayers sweeps the 2.5D replication factor on a fixed
// machine, the §6.2 memory/communication trade-off.
func BenchmarkAblation25DLayers(b *testing.B) {
	n, p := 64, 256
	a := matrix.Random(n, n, 7)
	bm := matrix.Random(n, n, 8)
	for _, c := range []int{1, 4} {
		c := c
		b.Run(map[int]string{1: "c1", 4: "c4"}[c], func(b *testing.B) {
			var res *algs.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = algs.TwoPointFiveD(a, bm, p, algs.Opts{Config: machine.BandwidthOnly(), Layers: c})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CommCost(), "words/proc")
			b.ReportMetric(res.Stats.MaxPeakMemory, "peak-memory-words")
		})
	}
}

// --- Micro-benchmarks of the substrates ---

// BenchmarkLocalMatMul measures the local compute kernel (real wall-clock,
// not simulated).
func BenchmarkLocalMatMul(b *testing.B) {
	a := matrix.Random(256, 256, 1)
	bm := matrix.Random(256, 256, 2)
	b.Run("Blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.Mul(a, bm)
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.MulParallel(a, bm, 0)
		}
	})
}

// worldScalingBody is the scheduler-stress SPMD body of the P-scaling
// benchmarks; it lives in internal/benchrec so cmd/benchrec records the
// identical workload (see that package for the body's design notes).
func worldScalingBody(p, rounds int) func(*machine.Rank) {
	return benchrec.ScalingBody(p, rounds)
}

// BenchmarkWorldScaling measures simulator wall-clock against the processor
// count on a fixed per-rank workload, the regime of the strong-scaling
// experiments (P in the thousands): ideal scheduler scaling keeps time/op
// growing linearly in P (total messages grow linearly), while a global-lock
// engine with broadcast wakeups degrades superlinearly.
func BenchmarkWorldScaling(b *testing.B) {
	const rounds = 16
	for _, p := range []int{64, 256, 1024, 4096} {
		p := p
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			body := worldScalingBody(p, rounds)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w := machine.NewWorld(p, machine.BandwidthOnly())
				if err := w.Run(body); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(2*rounds*p), "msgs/op")
		})
	}
}

// BenchmarkEngineScaling races the two machine backends on the identical
// scheduler-stress workload at the processor counts where they diverge: the
// goroutine engine keeps every rank runnable at once (P goroutines fighting
// for the scheduler), while the event engine multiplexes parked tasks onto
// a small worker pool with targeted handoffs. The recorded expectation is
// the event engine at least matching at P=4096 and winning at P=65536.
// cmd/benchrec runs the same cells via testing.Benchmark and writes
// BENCH_engine_scaling.json, so `go test -bench EngineScaling` and the
// tracked JSON always measure the same thing.
func BenchmarkEngineScaling(b *testing.B) {
	for _, engine := range []machine.Engine{machine.EngineGoroutine, machine.EngineEvent} {
		for _, p := range []int{1024, 4096, 65536} {
			engine, p := engine, p
			b.Run(fmt.Sprintf("engine=%s/P=%d", engine, p), func(b *testing.B) {
				benchrec.Bench(b, engine, p)
			})
		}
	}
}

// BenchmarkAlg1Scaling runs the paper's Algorithm 1 end-to-end at large
// processor counts — the full hot path (collectives over fibers, pooled
// buffers, local tiled matmul) rather than the synthetic scheduler stress of
// BenchmarkWorldScaling.
func BenchmarkAlg1Scaling(b *testing.B) {
	n := 256
	a := matrix.Random(n, n, 11)
	bm := matrix.Random(n, n, 12)
	for _, p := range []int{64, 512, 1024} {
		p := p
		b.Run(fmt.Sprintf("P=%d", p), func(b *testing.B) {
			var res *algs.Result
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				res, err = algs.Alg1(a, bm, p, algs.Opts{Config: machine.BandwidthOnly()})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CommCost(), "words/proc")
		})
	}
}

// BenchmarkCollectiveAllGather measures simulator throughput for the
// collective at the heart of Algorithm 1.
func BenchmarkCollectiveAllGather(b *testing.B) {
	allocs := loopAllocs(b, func(int) {
		w := machine.NewWorld(16, machine.BandwidthOnly())
		members := make([]int, 16)
		for j := range members {
			members[j] = j
		}
		err := w.Run(func(r *machine.Rank) {
			g := collective.NewGroup(r, members, 1, collective.Auto)
			g.AllGather(make([]float64, 1024))
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	if allocs > 0 {
		// Each of the 16 ranks forwards 15 blocks of 1024 words.
		b.ReportMetric(16*15*1024/allocs, "words/alloc")
	}
}

// BenchmarkAblationLowMemChunks sweeps the §6.2 low-memory adaptation's
// chunk factor: bandwidth flat, latency up, gathered-panel memory down.
func BenchmarkAblationLowMemChunks(b *testing.B) {
	d := core.NewDims(768, 192, 48)
	g, err := grid.CaseGrid(d, 36)
	if err != nil {
		b.Fatal(err)
	}
	a := matrix.Random(d.N1, d.N2, 9)
	bm := matrix.Random(d.N2, d.N3, 10)
	for _, chunks := range []int{1, 4, 16} {
		chunks := chunks
		b.Run(map[int]string{1: "c1", 4: "c4", 16: "c16"}[chunks], func(b *testing.B) {
			var res *algs.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = algs.Alg1LowMem(a, bm, 36, chunks, algs.Opts{Config: machine.Config{Alpha: 1, Beta: 1}, Grid: g})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.CommCost(), "words/proc")
			b.ReportMetric(float64(res.Stats.TotalMessages), "total-messages")
			b.ReportMetric(res.Stats.MaxPeakMemory, "peak-memory-words")
		})
	}
}

// BenchmarkFastMatmulContext regenerates the §2.3 fast-matmul artifact and
// measures the Strassen kernel against the classical one.
func BenchmarkFastMatmulContext(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.FastMatmul(4096, []int{1, 64, 4096}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.ClassicalVsStrassenBoundRatio(4096), "classical-over-strassen-P4096")
}

// BenchmarkExtensionD4 regenerates the §6.3 extension artifact.
func BenchmarkExtensionD4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Extension(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeometry regenerates the lattice-level verification artifact.
func BenchmarkGeometry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Geometry(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCARMA regenerates the recursive-vs-optimal grid artifact.
func BenchmarkCARMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if a := experiments.CARMAComparison(); a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
}

// BenchmarkRuntimeModel regenerates the model-vs-simulation artifact.
func BenchmarkRuntimeModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RuntimeModel(experiments.DefaultRectDims, experiments.DefaultRuntimeConfig, []int{1, 16, 512}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStrassenKernel compares the local Strassen and classical
// kernels' wall-clock at a size where the crossover is visible.
func BenchmarkStrassenKernel(b *testing.B) {
	a := matrix.Random(256, 256, 1)
	bm := matrix.Random(256, 256, 2)
	b.Run("Classical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.Mul(a, bm)
		}
	})
	b.Run("Strassen2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matrix.MulStrassen(a, bm, 2)
		}
	})
}

// BenchmarkCAPS runs the parallel-Strassen experiment (E15), reporting the
// measured volume against the fast floor.
func BenchmarkCAPS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.CAPSExperiment(56); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(caps.FastLeadingTerm(56, 49), "fast-floor-words")
}

// BenchmarkModelRobustness regenerates the αβγ/BSP/LPRAM artifact (E14).
func BenchmarkModelRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if a := experiments.ModelRobustness(); a.Text == "" {
			b.Fatal("empty artifact")
		}
	}
}
