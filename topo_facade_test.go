package parmm

import (
	"errors"
	"testing"
)

// TestTopologyFacade drives the topology surface end-to-end through the
// public API: parse a fabric, run Algorithm 1 on it via functional options,
// and check the topology-aware prediction brackets the flat one.
func TestTopologyFacade(t *testing.T) {
	const n, p = 48, 16
	d := SquareDims(n)
	cfg := MachineConfig{Alpha: 2, Beta: 1, Gamma: 1.0 / 16}
	a := RandomMatrix(n, n, 5)
	b := RandomMatrix(n, n, 6)

	flatRes, err := Alg1(a, b, p, NewOpts(WithConfig(cfg)))
	if err != nil {
		t.Fatal(err)
	}

	fabric, err := ParseTopology("tree=2x4", p, Link{Alpha: cfg.Alpha, Beta: cfg.Beta})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Alg1(a, b, p, NewOpts(
		WithConfig(cfg), WithTopology(fabric), WithPlacement(PlaceContiguous)))
	if err != nil {
		t.Fatal(err)
	}
	if diff := res.C.MaxAbsDiff(Mul(a, b)); diff > 1e-9*n {
		t.Fatalf("wrong product on topology: %g", diff)
	}
	if res.Stats.CriticalPath <= flatRes.Stats.CriticalPath {
		t.Fatalf("skinny tree critical path %v not above flat %v",
			res.Stats.CriticalPath, flatRes.Stats.CriticalPath)
	}
	if res.Stats.TotalWordsSent != flatRes.Stats.TotalWordsSent {
		t.Fatalf("topology changed word volume: %v vs %v",
			res.Stats.TotalWordsSent, flatRes.Stats.TotalWordsSent)
	}

	pred, err := PredictAlg1TimeOnTopology(d, res.Grid, cfg, fabric, PlaceContiguous)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Slowdown <= 1 {
		t.Fatalf("tree slowdown = %v, want > 1", pred.Slowdown)
	}
	flat := PredictAlg1Time(d, res.Grid, cfg)
	if pred.FlatTotal != flat.Total() {
		t.Fatalf("flatTotal %v != PredictAlg1Time %v", pred.FlatTotal, flat.Total())
	}

	if len(TopologyKinds()) == 0 {
		t.Fatal("TopologyKinds empty")
	}
}

// TestTopologyFacadeErrors pins the ErrBadTopology taxonomy on the public
// surface.
func TestTopologyFacadeErrors(t *testing.T) {
	if _, err := ParseTopology("hypercube=4", 16, Link{Alpha: 1, Beta: 1}); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("unknown spec: %v", err)
	}
	if _, err := ParseTopology("torus=3x3", 16, Link{Alpha: 1, Beta: 1}); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("size mismatch: %v", err)
	}
	fabric, err := ParseTopology("twolevel=4", 8, Link{Alpha: 1, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b := RandomMatrix(8, 8, 1), RandomMatrix(8, 8, 2)
	if _, err := Alg1(a, b, 4, NewOpts(WithConfig(BandwidthOnly()), WithTopology(fabric))); !errors.Is(err, ErrBadTopology) {
		t.Fatalf("rank-count mismatch: %v", err)
	}
}
